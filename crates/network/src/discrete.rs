//! Discretisation of a [`RailwayNetwork`] into the segment graph `G = (V, E)`
//! of Section III-A of the paper.
//!
//! Every track is cut into segments of (at most) the spatial resolution
//! `r_s`; segment endpoints become nodes, which are the *potential VSS
//! borders*. The struct also provides the combinatorial queries the SAT
//! encoding needs: `chains(l)`, `reachable(e, v)`, `between(e, f)` and
//! `paths(e, f, v)`.

use std::collections::VecDeque;

use crate::error::NetworkError;
use crate::topology::{id_type, RailwayNetwork, StationId, TrackId, TtdId};
use crate::units::Meters;

id_type!(
    /// A node of the discretised segment graph (a potential VSS border).
    NodeId
);
id_type!(
    /// An edge of the discretised segment graph (one track segment).
    EdgeId
);

/// Classification of a segment-graph node.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum NodeKind {
    /// Degree-1 node at the edge of the modelled network (trains enter and
    /// leave here).
    Boundary,
    /// Node where two TTD sections meet; by definition always a VSS border
    /// (TTD borders carry physical axle counters).
    TtdBorder,
    /// Interior node — a *candidate* VSS border the design tasks may or may
    /// not activate.
    Interior,
}

/// One segment of the discretised network.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Segment {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Owning TTD section.
    pub ttd: TtdId,
    /// Originating track.
    pub track: TrackId,
    /// Position of this segment within its track (0-based from the track's
    /// `from` end).
    pub offset: u32,
}

/// The discretised segment graph with the query operations the encoder
/// needs.
///
/// # Examples
///
/// ```
/// use etcs_network::{NetworkBuilder, DiscreteNet, Meters};
/// let mut b = NetworkBuilder::new();
/// let a = b.node();
/// let c = b.node();
/// let t = b.track(a, c, Meters::from_km(1.5), "main");
/// b.ttd("TTD1", [t]);
/// let net = b.build()?;
/// let disc = DiscreteNet::new(&net, Meters::from_km(0.5))?;
/// assert_eq!(disc.num_edges(), 3);
/// assert_eq!(disc.num_nodes(), 4);
/// # Ok::<(), etcs_network::NetworkError>(())
/// ```
#[derive(Clone, Debug)]
pub struct DiscreteNet {
    r_s: Meters,
    kinds: Vec<NodeKind>,
    segments: Vec<Segment>,
    /// Incident edges per node.
    node_edges: Vec<Vec<EdgeId>>,
    /// Edges per TTD.
    ttd_edges: Vec<Vec<EdgeId>>,
    /// Edges per station.
    station_edges: Vec<Vec<EdgeId>>,
    /// Adjacent edges per edge (line-graph neighbourhood).
    edge_neighbors: Vec<Vec<EdgeId>>,
    /// Names for diagnostics: `track[i]`.
    edge_names: Vec<String>,
}

impl DiscreteNet {
    /// Discretises `net` with spatial resolution `r_s`.
    ///
    /// A track of length `l` becomes `ceil(l / r_s)` segments (at least 1);
    /// the paper assumes track lengths are multiples of `r_s`, which all
    /// bundled case studies satisfy.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::BadResolution`] for a zero resolution and
    /// [`NetworkError::CyclicTtd`] / [`NetworkError::DisconnectedTtd`] when
    /// a TTD's segments do not form a tree (the paper's `between(e, f)`
    /// needs a unique connecting chain).
    pub fn new(net: &RailwayNetwork, r_s: Meters) -> Result<Self, NetworkError> {
        if r_s == Meters::ZERO {
            return Err(NetworkError::BadResolution {
                reason: "spatial resolution must be positive".into(),
            });
        }
        let mut kinds: Vec<NodeKind> = vec![NodeKind::Interior; net.num_nodes()];
        let mut segments: Vec<Segment> = Vec::new();
        let mut edge_names: Vec<String> = Vec::new();
        let mut num_nodes = net.num_nodes();

        for (ti, track) in net.tracks().iter().enumerate() {
            let track_id = TrackId::from_index(ti);
            let count = track.length.div_ceil(r_s).max(1) as usize;
            let mut prev = NodeId(track.from.0);
            for i in 0..count {
                let next = if i + 1 == count {
                    NodeId(track.to.0)
                } else {
                    let n = NodeId::from_index(num_nodes);
                    num_nodes += 1;
                    kinds.push(NodeKind::Interior);
                    n
                };
                segments.push(Segment {
                    a: prev,
                    b: next,
                    ttd: net.ttd_of(track_id),
                    track: track_id,
                    offset: i as u32,
                });
                edge_names.push(format!("{}[{}]", track.name, i));
                prev = next;
            }
        }

        // Node adjacency and kinds.
        let mut node_edges: Vec<Vec<EdgeId>> = vec![Vec::new(); num_nodes];
        for (ei, s) in segments.iter().enumerate() {
            node_edges[s.a.index()].push(EdgeId::from_index(ei));
            node_edges[s.b.index()].push(EdgeId::from_index(ei));
        }
        for (ni, incident) in node_edges.iter().enumerate() {
            let mut ttds: Vec<TtdId> = incident.iter().map(|e| segments[e.index()].ttd).collect();
            ttds.sort_unstable();
            ttds.dedup();
            kinds[ni] = if ttds.len() >= 2 {
                NodeKind::TtdBorder
            } else if incident.len() == 1 {
                NodeKind::Boundary
            } else {
                NodeKind::Interior
            };
        }

        // Per-TTD and per-station edge sets.
        let mut ttd_edges: Vec<Vec<EdgeId>> = vec![Vec::new(); net.ttds().len()];
        for (ei, s) in segments.iter().enumerate() {
            ttd_edges[s.ttd.index()].push(EdgeId::from_index(ei));
        }
        let mut station_edges: Vec<Vec<EdgeId>> = vec![Vec::new(); net.stations().len()];
        for (si, station) in net.stations().iter().enumerate() {
            for (ei, s) in segments.iter().enumerate() {
                if station.tracks.contains(&s.track) {
                    station_edges[si].push(EdgeId::from_index(ei));
                }
            }
        }

        // Line-graph adjacency.
        let mut edge_neighbors: Vec<Vec<EdgeId>> = vec![Vec::new(); segments.len()];
        for (ni, incident) in node_edges.iter().enumerate() {
            let _ = ni;
            for (i, &e) in incident.iter().enumerate() {
                for &f in incident.iter().skip(i + 1) {
                    edge_neighbors[e.index()].push(f);
                    edge_neighbors[f.index()].push(e);
                }
            }
        }
        for n in &mut edge_neighbors {
            n.sort_unstable();
            n.dedup();
        }

        let disc = DiscreteNet {
            r_s,
            kinds,
            segments,
            node_edges,
            ttd_edges,
            station_edges,
            edge_neighbors,
            edge_names,
        };
        disc.validate_ttd_shapes(net)?;
        Ok(disc)
    }

    /// Each TTD's segment subgraph must be a connected tree for the paper's
    /// `between(e, f)` chain to be unique.
    fn validate_ttd_shapes(&self, net: &RailwayNetwork) -> Result<(), NetworkError> {
        for (ti, edges) in self.ttd_edges.iter().enumerate() {
            if edges.is_empty() {
                continue;
            }
            let name = || net.ttds()[ti].name.clone();
            // Count distinct nodes in the TTD subgraph.
            let mut nodes: Vec<NodeId> = edges
                .iter()
                .flat_map(|&e| {
                    let s = &self.segments[e.index()];
                    [s.a, s.b]
                })
                .collect();
            nodes.sort_unstable();
            nodes.dedup();
            if edges.len() + 1 < nodes.len() {
                return Err(NetworkError::DisconnectedTtd { ttd: name() });
            }
            if edges.len() + 1 > nodes.len() {
                return Err(NetworkError::CyclicTtd { ttd: name() });
            }
            // |E| = |V| - 1: connected iff acyclic; do a BFS to distinguish.
            let reach = self.bfs_edges(edges[0], |e| self.segments[e.index()].ttd.index() == ti);
            if reach.iter().filter(|d| d.is_some()).count() != edges.len() {
                return Err(NetworkError::DisconnectedTtd { ttd: name() });
            }
        }
        Ok(())
    }

    /// The spatial resolution this graph was built with.
    pub fn resolution(&self) -> Meters {
        self.r_s
    }

    /// Number of nodes `|V|`.
    pub fn num_nodes(&self) -> usize {
        self.kinds.len()
    }

    /// Number of edges (segments) `|E|`.
    pub fn num_edges(&self) -> usize {
        self.segments.len()
    }

    /// All segments, indexable by [`EdgeId`].
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// The segment behind an edge id.
    pub fn segment(&self, e: EdgeId) -> &Segment {
        &self.segments[e.index()]
    }

    /// Kind of a node.
    pub fn node_kind(&self, n: NodeId) -> NodeKind {
        self.kinds[n.index()]
    }

    /// All nodes that are candidate VSS borders (interior nodes).
    pub fn border_candidates(&self) -> Vec<NodeId> {
        self.nodes_of_kind(NodeKind::Interior)
    }

    /// All nodes that are *forced* VSS borders (TTD borders).
    pub fn forced_borders(&self) -> Vec<NodeId> {
        self.nodes_of_kind(NodeKind::TtdBorder)
    }

    fn nodes_of_kind(&self, kind: NodeKind) -> Vec<NodeId> {
        self.kinds
            .iter()
            .enumerate()
            .filter(|&(_, &k)| k == kind)
            .map(|(i, _)| NodeId::from_index(i))
            .collect()
    }

    /// Edges incident to a node.
    pub fn edges_at(&self, n: NodeId) -> &[EdgeId] {
        &self.node_edges[n.index()]
    }

    /// Edges adjacent to an edge (sharing a node).
    pub fn neighbors(&self, e: EdgeId) -> &[EdgeId] {
        &self.edge_neighbors[e.index()]
    }

    /// Edges of a TTD section.
    pub fn ttd_edges(&self, t: TtdId) -> &[EdgeId] {
        &self.ttd_edges[t.index()]
    }

    /// Edges of a station.
    pub fn station_edges(&self, s: StationId) -> &[EdgeId] {
        &self.station_edges[s.index()]
    }

    /// The node shared by two adjacent edges, if any.
    pub fn shared_node(&self, e: EdgeId, f: EdgeId) -> Option<NodeId> {
        let se = self.segment(e);
        let sf = self.segment(f);
        [se.a, se.b].into_iter().find(|n| *n == sf.a || *n == sf.b)
    }

    /// Diagnostic name of an edge (`track[i]`).
    pub fn edge_name(&self, e: EdgeId) -> &str {
        &self.edge_names[e.index()]
    }

    /// BFS distances (in line-graph hops) from `from` over edges accepted by
    /// `filter`; `None` marks unreachable edges.
    pub fn bfs_edges(&self, from: EdgeId, filter: impl Fn(EdgeId) -> bool) -> Vec<Option<u32>> {
        let mut dist: Vec<Option<u32>> = vec![None; self.segments.len()];
        if !filter(from) {
            return dist;
        }
        dist[from.index()] = Some(0);
        let mut queue = VecDeque::from([from]);
        while let Some(e) = queue.pop_front() {
            let d = dist[e.index()].expect("queued edges have distances");
            for &f in &self.edge_neighbors[e.index()] {
                if dist[f.index()].is_none() && filter(f) {
                    dist[f.index()] = Some(d + 1);
                    queue.push_back(f);
                }
            }
        }
        dist
    }

    /// Unrestricted BFS distances from `from` (see [`DiscreteNet::bfs_edges`]).
    pub fn edge_distances(&self, from: EdgeId) -> Vec<Option<u32>> {
        self.bfs_edges(from, |_| true)
    }

    /// `reachable(e, v)` of the paper: all edges within `v` hops of `e`,
    /// including `e` itself.
    pub fn reachable(&self, e: EdgeId, v: u32) -> Vec<EdgeId> {
        self.edge_distances(e)
            .iter()
            .enumerate()
            .filter(|(_, d)| matches!(d, Some(x) if *x <= v))
            .map(|(i, _)| EdgeId::from_index(i))
            .collect()
    }

    /// `chains(l)` of the paper: all simple paths of exactly `l` edges, in a
    /// canonical orientation (each chain is reported once, not once per
    /// direction).
    ///
    /// # Panics
    ///
    /// Panics if `l == 0`; a train always occupies at least one segment.
    pub fn chains(&self, l: usize) -> Vec<Vec<EdgeId>> {
        assert!(l >= 1, "chains of zero length are meaningless");
        let mut out: Vec<Vec<EdgeId>> = Vec::new();
        for start in 0..self.segments.len() {
            let start = EdgeId::from_index(start);
            let s = self.segment(start);
            // Grow from `start` in both directions; a chain is a simple path
            // in nodes as well as edges (a train is a linear object and
            // cannot wrap around a loop of parallel tracks).
            let mut stack: Vec<(Vec<EdgeId>, Vec<NodeId>, NodeId)> = vec![
                (vec![start], vec![s.a, s.b], s.b),
                (vec![start], vec![s.a, s.b], s.a),
            ];
            while let Some((chain, visited, frontier)) = stack.pop() {
                if chain.len() == l {
                    // Keep only the canonical traversal direction.
                    if chain.first() <= chain.last() {
                        out.push(chain);
                    }
                    continue;
                }
                for &next in self.edges_at(frontier) {
                    if chain.contains(&next) {
                        continue;
                    }
                    let sn = self.segment(next);
                    let far = if sn.a == frontier { sn.b } else { sn.a };
                    if visited.contains(&far) {
                        continue;
                    }
                    let mut grown = chain.clone();
                    grown.push(next);
                    let mut vis = visited.clone();
                    vis.push(far);
                    stack.push((grown, vis, far));
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// `between(e, f)` of the paper: the nodes crossed by the unique chain
    /// connecting `e` and `f` inside their common TTD. Returns `None` when
    /// the edges are in different TTDs (they are separated by a TTD border
    /// anyway).
    ///
    /// # Panics
    ///
    /// Panics if `e == f` (no chain connects an edge to itself) — callers
    /// handle same-edge conflicts separately.
    pub fn between(&self, e: EdgeId, f: EdgeId) -> Option<Vec<NodeId>> {
        assert_ne!(e, f, "between(e, e) is undefined");
        let ttd = self.segment(e).ttd;
        if self.segment(f).ttd != ttd {
            return None;
        }
        // BFS within the TTD from e to f, tracking parents. The TTD is a
        // tree (validated at construction) so the path is unique.
        let mut parent: Vec<Option<EdgeId>> = vec![None; self.segments.len()];
        let mut seen = vec![false; self.segments.len()];
        seen[e.index()] = true;
        let mut queue = VecDeque::from([e]);
        while let Some(g) = queue.pop_front() {
            if g == f {
                break;
            }
            for &h in &self.edge_neighbors[g.index()] {
                if !seen[h.index()] && self.segment(h).ttd == ttd {
                    seen[h.index()] = true;
                    parent[h.index()] = Some(g);
                    queue.push_back(h);
                }
            }
        }
        if !seen[f.index()] {
            // Disconnected TTD is rejected at construction; defensive.
            return Some(Vec::new());
        }
        // Walk back from f to e collecting shared nodes.
        let mut nodes = Vec::new();
        let mut cur = f;
        while let Some(p) = parent[cur.index()] {
            let shared = self.shared_node(cur, p).expect("BFS parents are adjacent");
            nodes.push(shared);
            cur = p;
        }
        nodes.reverse();
        Some(nodes)
    }

    /// `paths(e, f, v)` of the paper: every edge that lies on some
    /// `≤ v`-hop route from `e` to `f` — i.e. all `g` with
    /// `d(e, g) + d(g, f) ≤ v`. Includes `e` and `f` themselves.
    pub fn path_edges(&self, e: EdgeId, f: EdgeId, v: u32) -> Vec<EdgeId> {
        let de = self.edge_distances(e);
        let df = self.edge_distances(f);
        (0..self.segments.len())
            .filter(|&g| match (de[g], df[g]) {
                (Some(a), Some(b)) => a + b <= v,
                _ => false,
            })
            .map(EdgeId::from_index)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::NetworkBuilder;

    fn km(x: f64) -> Meters {
        Meters::from_km(x)
    }

    /// A — 3 segments — P, branch P — 2 segments — C, P — 2 segments — B.
    fn branched() -> (RailwayNetwork, DiscreteNet) {
        let mut b = NetworkBuilder::new();
        let a = b.node();
        let p = b.node();
        let c = b.node();
        let bb = b.node();
        let t1 = b.track(a, p, km(1.5), "ap");
        let t2 = b.track(p, c, km(1.0), "pc");
        let t3 = b.track(p, bb, km(1.0), "pb");
        b.ttd("TTD1", [t1]);
        b.ttd("TTD2", [t2]);
        b.ttd("TTD3", [t3]);
        b.station("A", [t1], true);
        let net = b.build().expect("valid");
        let disc = DiscreteNet::new(&net, km(0.5)).expect("discretises");
        (net, disc)
    }

    #[test]
    fn segment_counts() {
        let (_, d) = branched();
        assert_eq!(d.num_edges(), 3 + 2 + 2);
        // 4 topo nodes + 2 + 1 + 1 interior division points
        assert_eq!(d.num_nodes(), 8);
    }

    #[test]
    fn node_kinds_classified() {
        let (_, d) = branched();
        let kinds: Vec<NodeKind> = (0..d.num_nodes())
            .map(|i| d.node_kind(NodeId::from_index(i)))
            .collect();
        // Topology nodes 0..4: A boundary, P ttd border, C boundary, B boundary.
        assert_eq!(kinds[0], NodeKind::Boundary);
        assert_eq!(kinds[1], NodeKind::TtdBorder);
        assert_eq!(kinds[2], NodeKind::Boundary);
        assert_eq!(kinds[3], NodeKind::Boundary);
        assert_eq!(
            kinds.iter().filter(|&&k| k == NodeKind::Interior).count(),
            4
        );
        assert_eq!(d.forced_borders(), vec![NodeId(1)]);
        assert_eq!(d.border_candidates().len(), 4);
    }

    #[test]
    fn short_track_still_gets_one_segment() {
        let mut b = NetworkBuilder::new();
        let a = b.node();
        let c = b.node();
        let t = b.track(a, c, Meters(100), "stub");
        b.ttd("TTD1", [t]);
        let net = b.build().expect("valid");
        let d = DiscreteNet::new(&net, km(0.5)).expect("discretises");
        assert_eq!(d.num_edges(), 1);
    }

    #[test]
    fn zero_resolution_rejected() {
        let (net, _) = branched();
        assert!(matches!(
            DiscreteNet::new(&net, Meters::ZERO),
            Err(NetworkError::BadResolution { .. })
        ));
    }

    #[test]
    fn cyclic_ttd_rejected() {
        let mut b = NetworkBuilder::new();
        let a = b.node();
        let c = b.node();
        let t1 = b.track(a, c, km(0.5), "t1");
        let t2 = b.track(a, c, km(0.5), "t2");
        b.ttd("TTD1", [t1, t2]);
        let net = b.build().expect("valid");
        assert!(matches!(
            DiscreteNet::new(&net, km(0.5)),
            Err(NetworkError::CyclicTtd { .. })
        ));
    }

    #[test]
    fn parallel_tracks_in_separate_ttds_accepted() {
        let mut b = NetworkBuilder::new();
        let a = b.node();
        let c = b.node();
        let t1 = b.track(a, c, km(0.5), "t1");
        let t2 = b.track(a, c, km(0.5), "t2");
        b.ttd("TTD1", [t1]);
        b.ttd("TTD2", [t2]);
        let net = b.build().expect("valid");
        let d = DiscreteNet::new(&net, km(0.5)).expect("two separate loops");
        // Both endpoints join two TTDs.
        assert_eq!(d.forced_borders().len(), 2);
    }

    #[test]
    fn reachable_includes_self_and_respects_radius() {
        let (_, d) = branched();
        let e0 = EdgeId(0); // first segment from A
        let r0 = d.reachable(e0, 0);
        assert_eq!(r0, vec![e0]);
        let r1 = d.reachable(e0, 1);
        assert_eq!(r1.len(), 2);
        let rall = d.reachable(e0, 10);
        assert_eq!(rall.len(), d.num_edges());
    }

    #[test]
    fn reachable_branches_at_points() {
        let (_, d) = branched();
        // Edge 2 is the last ap segment, adjacent to P: one hop reaches both
        // branch edges (3: first pc, 5: first pb) and edge 1.
        let r = d.reachable(EdgeId(2), 1);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn chains_of_length_one_are_edges() {
        let (_, d) = branched();
        assert_eq!(d.chains(1).len(), d.num_edges());
    }

    #[test]
    fn chains_of_length_two_cover_adjacencies_once() {
        let (_, d) = branched();
        let chains = d.chains(2);
        // ap: (0,1),(1,2); pc: (3,4); pb: (5,6); across P: (2,3),(2,5),(3,5)
        assert_eq!(chains.len(), 7);
        for c in &chains {
            assert_eq!(c.len(), 2);
            assert!(d.shared_node(c[0], c[1]).is_some());
        }
        // No duplicates in either orientation.
        let mut seen = std::collections::BTreeSet::new();
        for c in &chains {
            let mut key = c.clone();
            key.sort();
            assert!(seen.insert(key), "chain listed twice: {c:?}");
        }
    }

    #[test]
    fn chains_do_not_revisit_edges() {
        let (_, d) = branched();
        for l in 1..=4 {
            for c in d.chains(l) {
                let mut u = c.clone();
                u.sort();
                u.dedup();
                assert_eq!(u.len(), c.len(), "chain revisits an edge: {c:?}");
            }
        }
    }

    #[test]
    fn between_same_ttd_path() {
        let (_, d) = branched();
        // Edges 0 and 2 in TTD1: path crosses the two interior nodes.
        let nodes = d.between(EdgeId(0), EdgeId(2)).expect("same ttd");
        assert_eq!(nodes.len(), 2);
        for n in nodes {
            assert_eq!(d.node_kind(n), NodeKind::Interior);
        }
        // Adjacent edges share exactly one crossing node.
        let nodes = d.between(EdgeId(0), EdgeId(1)).expect("same ttd");
        assert_eq!(nodes.len(), 1);
    }

    #[test]
    fn between_cross_ttd_is_none() {
        let (_, d) = branched();
        assert_eq!(d.between(EdgeId(0), EdgeId(3)), None);
    }

    #[test]
    #[should_panic(expected = "between(e, e)")]
    fn between_same_edge_panics() {
        let (_, d) = branched();
        d.between(EdgeId(0), EdgeId(0));
    }

    #[test]
    fn path_edges_contains_endpoints_and_midpoints() {
        let (_, d) = branched();
        // From edge 0 to edge 2 with speed 2: exactly the ap track.
        let p = d.path_edges(EdgeId(0), EdgeId(2), 2);
        assert_eq!(p, vec![EdgeId(0), EdgeId(1), EdgeId(2)]);
        // With a bigger budget, detours through the branch appear.
        let p = d.path_edges(EdgeId(0), EdgeId(2), 4);
        assert!(p.len() > 3);
    }

    #[test]
    fn path_edges_unreachable_budget_is_empty() {
        let (_, d) = branched();
        assert!(d.path_edges(EdgeId(0), EdgeId(2), 1).is_empty());
    }

    #[test]
    fn station_and_ttd_edges() {
        let (net, d) = branched();
        let s = net.station_by_name("A").expect("exists");
        assert_eq!(d.station_edges(s).len(), 3);
        assert_eq!(d.ttd_edges(TtdId(0)).len(), 3);
        assert_eq!(d.ttd_edges(TtdId(1)).len(), 2);
    }

    #[test]
    fn edge_names_are_descriptive() {
        let (_, d) = branched();
        assert_eq!(d.edge_name(EdgeId(0)), "ap[0]");
        assert_eq!(d.edge_name(EdgeId(4)), "pc[1]");
    }

    #[test]
    fn bfs_respects_filter() {
        let (_, d) = branched();
        // Restrict to TTD1: branch edges unreachable.
        let dist = d.bfs_edges(EdgeId(0), |e| d.segment(e).ttd == TtdId(0));
        assert_eq!(dist[2], Some(2));
        assert_eq!(dist[3], None);
    }
}
