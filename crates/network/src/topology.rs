//! Macroscopic railway topology: nodes, tracks, TTD sections and stations.
//!
//! This is the *continuous* description a designer starts from (Fig. 1a of
//! the paper): tracks with physical lengths joined at points and axle
//! counters, grouped into Trackside-Train-Detection (TTD) sections, with
//! named stations marking where trains may start, stop and end.
//! [`crate::DiscreteNet`] turns it into the segment graph `G = (V, E)` of
//! Section III-A.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::error::NetworkError;
use crate::units::Meters;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Clone,
            Copy,
            PartialEq,
            Eq,
            PartialOrd,
            Ord,
            Hash,
            Debug,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Dense index for table addressing.
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Creates the id from a dense index.
            pub fn from_index(i: usize) -> Self {
                $name(i as u32)
            }
        }

        impl ::std::fmt::Display for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

id_type!(
    /// A junction point, axle counter location or track end in the
    /// macroscopic topology.
    TopoNodeId
);
id_type!(
    /// A physical track between two topology nodes.
    TrackId
);
id_type!(
    /// A Trackside-Train-Detection section (a group of tracks guarded by
    /// axle counters).
    TtdId
);
id_type!(
    /// A named station (a set of tracks where trains may start, stop or
    /// terminate).
    StationId
);

pub(crate) use id_type;

/// A physical track of the macroscopic topology.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Track {
    /// One end of the track.
    pub from: TopoNodeId,
    /// The other end.
    pub to: TopoNodeId,
    /// Physical length.
    pub length: Meters,
    /// Human-readable name (unique within the network).
    pub name: String,
}

/// A TTD section: a named set of tracks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ttd {
    /// Human-readable name (unique within the network).
    pub name: String,
    /// The member tracks.
    pub tracks: Vec<TrackId>,
}

/// A station: a named set of tracks where trains may start, stop or end.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Station {
    /// Human-readable name (unique within the network).
    pub name: String,
    /// Tracks belonging to the station.
    pub tracks: Vec<TrackId>,
    /// `true` for stations at the network boundary: trains terminating here
    /// leave the modelled network, freeing their section. Trains ending at
    /// an interior station park on a station track instead.
    pub boundary: bool,
}

/// A validated macroscopic railway network.
///
/// Construct via [`NetworkBuilder`].
///
/// # Examples
///
/// ```
/// use etcs_network::{NetworkBuilder, Meters};
/// let mut b = NetworkBuilder::new();
/// let a = b.node();
/// let p = b.node();
/// let t = b.track(a, p, Meters::from_km(2.0), "main");
/// b.ttd("TTD1", [t]);
/// b.station("A", [t], true);
/// let net = b.build()?;
/// assert_eq!(net.tracks().len(), 1);
/// # Ok::<(), etcs_network::NetworkError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RailwayNetwork {
    num_nodes: usize,
    tracks: Vec<Track>,
    ttds: Vec<Ttd>,
    stations: Vec<Station>,
    /// Track → owning TTD (validated to be total and unique).
    track_ttd: Vec<TtdId>,
}

impl RailwayNetwork {
    /// Number of topology nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// All tracks, indexable by [`TrackId`].
    pub fn tracks(&self) -> &[Track] {
        &self.tracks
    }

    /// All TTD sections, indexable by [`TtdId`].
    pub fn ttds(&self) -> &[Ttd] {
        &self.ttds
    }

    /// All stations, indexable by [`StationId`].
    pub fn stations(&self) -> &[Station] {
        &self.stations
    }

    /// The TTD owning a track.
    pub fn ttd_of(&self, track: TrackId) -> TtdId {
        self.track_ttd[track.index()]
    }

    /// Looks a station up by name.
    pub fn station_by_name(&self, name: &str) -> Option<StationId> {
        self.stations
            .iter()
            .position(|s| s.name == name)
            .map(StationId::from_index)
    }

    /// Looks a TTD up by name.
    pub fn ttd_by_name(&self, name: &str) -> Option<TtdId> {
        self.ttds
            .iter()
            .position(|t| t.name == name)
            .map(TtdId::from_index)
    }

    /// Total track length of the network.
    pub fn total_length(&self) -> Meters {
        self.tracks
            .iter()
            .fold(Meters::ZERO, |acc, t| acc + t.length)
    }

    /// Degree of each topology node (number of incident tracks).
    pub fn node_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.num_nodes];
        for t in &self.tracks {
            deg[t.from.index()] += 1;
            deg[t.to.index()] += 1;
        }
        deg
    }
}

/// Builder for [`RailwayNetwork`] with validation at [`NetworkBuilder::build`].
#[derive(Clone, Debug, Default)]
pub struct NetworkBuilder {
    num_nodes: usize,
    tracks: Vec<Track>,
    ttds: Vec<Ttd>,
    stations: Vec<Station>,
}

impl NetworkBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a new topology node and returns its id.
    pub fn node(&mut self) -> TopoNodeId {
        let id = TopoNodeId::from_index(self.num_nodes);
        self.num_nodes += 1;
        id
    }

    /// Declares `n` nodes and returns them in order.
    pub fn nodes(&mut self, n: usize) -> Vec<TopoNodeId> {
        (0..n).map(|_| self.node()).collect()
    }

    /// Declares a track between two nodes.
    pub fn track(
        &mut self,
        from: TopoNodeId,
        to: TopoNodeId,
        length: Meters,
        name: impl Into<String>,
    ) -> TrackId {
        let id = TrackId::from_index(self.tracks.len());
        self.tracks.push(Track {
            from,
            to,
            length,
            name: name.into(),
        });
        id
    }

    /// Declares a TTD section over the given tracks.
    pub fn ttd(
        &mut self,
        name: impl Into<String>,
        tracks: impl IntoIterator<Item = TrackId>,
    ) -> TtdId {
        let id = TtdId::from_index(self.ttds.len());
        self.ttds.push(Ttd {
            name: name.into(),
            tracks: tracks.into_iter().collect(),
        });
        id
    }

    /// Declares a station over the given tracks; `boundary` marks network
    /// entry/exit stations.
    pub fn station(
        &mut self,
        name: impl Into<String>,
        tracks: impl IntoIterator<Item = TrackId>,
        boundary: bool,
    ) -> StationId {
        let id = StationId::from_index(self.stations.len());
        self.stations.push(Station {
            name: name.into(),
            tracks: tracks.into_iter().collect(),
            boundary,
        });
        id
    }

    /// Validates and freezes the network.
    ///
    /// # Errors
    ///
    /// Returns a [`NetworkError`] if a track end references an undeclared
    /// node, a track has zero length, any track is not in exactly one TTD,
    /// a TTD or station references an undeclared track, names collide, or
    /// the graph is disconnected.
    pub fn build(self) -> Result<RailwayNetwork, NetworkError> {
        // Reference validity.
        for t in &self.tracks {
            for n in [t.from, t.to] {
                if n.index() >= self.num_nodes {
                    return Err(NetworkError::UnknownNode { node: n.index() });
                }
            }
            if t.length == Meters::ZERO {
                return Err(NetworkError::EmptyTrack {
                    track: t.name.clone(),
                });
            }
        }
        for coll in [
            self.ttds.iter().flat_map(|t| &t.tracks).collect::<Vec<_>>(),
            self.stations
                .iter()
                .flat_map(|s| &s.tracks)
                .collect::<Vec<_>>(),
        ] {
            for &tr in coll {
                if tr.index() >= self.tracks.len() {
                    return Err(NetworkError::UnknownTrack { track: tr.index() });
                }
            }
        }
        // Unique names per kind.
        for names in [
            self.tracks.iter().map(|t| &t.name).collect::<Vec<_>>(),
            self.ttds.iter().map(|t| &t.name).collect::<Vec<_>>(),
            self.stations.iter().map(|s| &s.name).collect::<Vec<_>>(),
        ] {
            let mut seen = BTreeSet::new();
            for n in names {
                if !seen.insert(n) {
                    return Err(NetworkError::DuplicateName { name: n.clone() });
                }
            }
        }
        // TTD coverage: exactly one TTD per track.
        let mut coverage: BTreeMap<TrackId, usize> = BTreeMap::new();
        for ttd in &self.ttds {
            for &tr in &ttd.tracks {
                *coverage.entry(tr).or_insert(0) += 1;
            }
        }
        let mut track_ttd = vec![TtdId(u32::MAX); self.tracks.len()];
        for (i, t) in self.tracks.iter().enumerate() {
            let count = coverage.get(&TrackId::from_index(i)).copied().unwrap_or(0);
            if count != 1 {
                return Err(NetworkError::TtdCoverage {
                    track: t.name.clone(),
                    count,
                });
            }
        }
        for (ti, ttd) in self.ttds.iter().enumerate() {
            for &tr in &ttd.tracks {
                track_ttd[tr.index()] = TtdId::from_index(ti);
            }
        }
        // Connectivity over nodes touched by tracks.
        if !self.tracks.is_empty() {
            let mut adj: Vec<Vec<usize>> = vec![Vec::new(); self.num_nodes];
            for t in &self.tracks {
                adj[t.from.index()].push(t.to.index());
                adj[t.to.index()].push(t.from.index());
            }
            let mut seen = vec![false; self.num_nodes];
            let start = self.tracks[0].from.index();
            let mut queue = VecDeque::from([start]);
            seen[start] = true;
            while let Some(n) = queue.pop_front() {
                for &m in &adj[n] {
                    if !seen[m] {
                        seen[m] = true;
                        queue.push_back(m);
                    }
                }
            }
            let touched: BTreeSet<usize> = self
                .tracks
                .iter()
                .flat_map(|t| [t.from.index(), t.to.index()])
                .collect();
            if touched.iter().any(|&n| !seen[n]) {
                return Err(NetworkError::Disconnected);
            }
        }
        Ok(RailwayNetwork {
            num_nodes: self.num_nodes,
            tracks: self.tracks,
            ttds: self.ttds,
            stations: self.stations,
            track_ttd,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn km(x: f64) -> Meters {
        Meters::from_km(x)
    }

    #[test]
    fn minimal_network_builds() {
        let mut b = NetworkBuilder::new();
        let a = b.node();
        let c = b.node();
        let t = b.track(a, c, km(1.0), "t");
        b.ttd("TTD1", [t]);
        let net = b.build().expect("valid");
        assert_eq!(net.num_nodes(), 2);
        assert_eq!(net.ttd_of(t), TtdId(0));
        assert_eq!(net.total_length(), km(1.0));
    }

    #[test]
    fn zero_length_track_rejected() {
        let mut b = NetworkBuilder::new();
        let a = b.node();
        let c = b.node();
        let t = b.track(a, c, Meters::ZERO, "t");
        b.ttd("TTD1", [t]);
        assert_eq!(
            b.build(),
            Err(NetworkError::EmptyTrack { track: "t".into() })
        );
    }

    #[test]
    fn uncovered_track_rejected() {
        let mut b = NetworkBuilder::new();
        let a = b.node();
        let c = b.node();
        b.track(a, c, km(1.0), "t");
        assert!(matches!(
            b.build(),
            Err(NetworkError::TtdCoverage { count: 0, .. })
        ));
    }

    #[test]
    fn doubly_covered_track_rejected() {
        let mut b = NetworkBuilder::new();
        let a = b.node();
        let c = b.node();
        let t = b.track(a, c, km(1.0), "t");
        b.ttd("TTD1", [t]);
        b.ttd("TTD2", [t]);
        assert!(matches!(
            b.build(),
            Err(NetworkError::TtdCoverage { count: 2, .. })
        ));
    }

    #[test]
    fn disconnected_network_rejected() {
        let mut b = NetworkBuilder::new();
        let a = b.node();
        let c = b.node();
        let d = b.node();
        let e = b.node();
        let t1 = b.track(a, c, km(1.0), "t1");
        let t2 = b.track(d, e, km(1.0), "t2");
        b.ttd("TTD1", [t1]);
        b.ttd("TTD2", [t2]);
        assert_eq!(b.build(), Err(NetworkError::Disconnected));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = NetworkBuilder::new();
        let a = b.node();
        let c = b.node();
        let d = b.node();
        let t1 = b.track(a, c, km(1.0), "same");
        let t2 = b.track(c, d, km(1.0), "same");
        b.ttd("TTD1", [t1, t2]);
        assert_eq!(
            b.build(),
            Err(NetworkError::DuplicateName {
                name: "same".into()
            })
        );
    }

    #[test]
    fn dangling_node_rejected() {
        let mut b = NetworkBuilder::new();
        let a = b.node();
        let bad = TopoNodeId(77);
        let t = b.track(a, bad, km(1.0), "t");
        b.ttd("TTD1", [t]);
        assert_eq!(b.build(), Err(NetworkError::UnknownNode { node: 77 }));
    }

    #[test]
    fn dangling_track_in_station_rejected() {
        let mut b = NetworkBuilder::new();
        let a = b.node();
        let c = b.node();
        let t = b.track(a, c, km(1.0), "t");
        b.ttd("TTD1", [t]);
        b.station("S", [TrackId(9)], false);
        assert_eq!(b.build(), Err(NetworkError::UnknownTrack { track: 9 }));
    }

    #[test]
    fn lookup_by_name() {
        let mut b = NetworkBuilder::new();
        let a = b.node();
        let c = b.node();
        let t = b.track(a, c, km(1.0), "t");
        b.ttd("TTD1", [t]);
        b.station("Alpha", [t], true);
        let net = b.build().expect("valid");
        assert_eq!(net.station_by_name("Alpha"), Some(StationId(0)));
        assert_eq!(net.station_by_name("Beta"), None);
        assert_eq!(net.ttd_by_name("TTD1"), Some(TtdId(0)));
        assert_eq!(net.ttd_by_name("TTD9"), None);
    }

    #[test]
    fn node_degrees_count_incident_tracks() {
        let mut b = NetworkBuilder::new();
        let n = b.nodes(4);
        let t1 = b.track(n[0], n[1], km(1.0), "t1");
        let t2 = b.track(n[1], n[2], km(1.0), "t2");
        let t3 = b.track(n[1], n[3], km(1.0), "t3");
        b.ttd("TTD1", [t1, t2, t3]);
        let net = b.build().expect("valid");
        assert_eq!(net.node_degrees(), vec![1, 3, 1, 1]);
    }

    #[test]
    fn display_of_ids() {
        assert_eq!(format!("{}", TrackId(3)), "TrackId(3)");
        assert_eq!(format!("{}", TtdId(0)), "TtdId(0)");
    }
}
