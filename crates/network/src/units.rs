//! Strongly-typed physical quantities.
//!
//! The paper discretises space with a resolution `r_s` and time with a
//! resolution `r_t`; mixing up metres, kilometres, seconds and steps is the
//! classic failure mode of such code, so every quantity gets a newtype.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A distance in metres.
///
/// # Examples
///
/// ```
/// use etcs_network::Meters;
/// let track = Meters::from_km(1.5);
/// assert_eq!(track.as_u64(), 1500);
/// assert_eq!(format!("{track}"), "1500 m");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Meters(pub u64);

impl Meters {
    /// Zero distance.
    pub const ZERO: Meters = Meters(0);

    /// Creates a distance from a kilometre value (rounded to whole metres).
    pub fn from_km(km: f64) -> Self {
        Meters((km * 1000.0).round() as u64)
    }

    /// The raw metre count.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// The distance in kilometres.
    pub fn as_km(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Ceiling division by another distance (e.g. train length / `r_s` →
    /// number of occupied segments).
    ///
    /// # Panics
    ///
    /// Panics if `unit` is zero.
    pub fn div_ceil(self, unit: Meters) -> u64 {
        assert!(unit.0 > 0, "division by a zero distance");
        self.0.div_ceil(unit.0)
    }

    /// Flooring division by another distance.
    ///
    /// # Panics
    ///
    /// Panics if `unit` is zero.
    pub fn div_floor(self, unit: Meters) -> u64 {
        assert!(unit.0 > 0, "division by a zero distance");
        self.0 / unit.0
    }
}

impl Add for Meters {
    type Output = Meters;
    fn add(self, rhs: Meters) -> Meters {
        Meters(self.0 + rhs.0)
    }
}

impl AddAssign for Meters {
    fn add_assign(&mut self, rhs: Meters) {
        self.0 += rhs.0;
    }
}

impl Sub for Meters {
    type Output = Meters;
    fn sub(self, rhs: Meters) -> Meters {
        Meters(self.0 - rhs.0)
    }
}

impl Mul<u64> for Meters {
    type Output = Meters;
    fn mul(self, rhs: u64) -> Meters {
        Meters(self.0 * rhs)
    }
}

impl fmt::Display for Meters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} m", self.0)
    }
}

/// A speed in kilometres per hour.
///
/// # Examples
///
/// ```
/// use etcs_network::{KmPerHour, Meters, Seconds};
/// let v = KmPerHour(180);
/// // 180 km/h over 30 s covers 1.5 km.
/// assert_eq!(v.distance_in(Seconds(30)), Meters::from_km(1.5));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct KmPerHour(pub u32);

impl KmPerHour {
    /// The raw km/h value.
    pub fn as_u32(self) -> u32 {
        self.0
    }

    /// Distance covered at this speed in the given duration (rounded to
    /// whole metres).
    pub fn distance_in(self, duration: Seconds) -> Meters {
        // km/h * s = (1000 m / 3600 s) * s
        Meters((self.0 as u64 * duration.0 * 1000).div_ceil(3600))
    }
}

impl fmt::Display for KmPerHour {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} km/h", self.0)
    }
}

/// A point in time or a duration, in whole seconds.
///
/// # Examples
///
/// ```
/// use etcs_network::Seconds;
/// let t = Seconds::parse_hms("0:04:30").expect("valid");
/// assert_eq!(t, Seconds(270));
/// assert_eq!(format!("{t}"), "0:04:30");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Seconds(pub u64);

impl Seconds {
    /// Zero / the scenario start.
    pub const ZERO: Seconds = Seconds(0);

    /// Creates a duration from whole minutes.
    pub fn from_minutes(m: u64) -> Self {
        Seconds(m * 60)
    }

    /// Creates a duration from fractional minutes (rounded to seconds).
    pub fn from_minutes_f64(m: f64) -> Self {
        Seconds((m * 60.0).round() as u64)
    }

    /// The raw second count.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Parses `H:MM:SS` or `M:SS` (as used in the paper's schedule tables).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseTimeError`] for anything that is not one or two
    /// colons separating decimal fields.
    pub fn parse_hms(text: &str) -> Result<Self, ParseTimeError> {
        let parts: Vec<&str> = text.split(':').collect();
        let err = || ParseTimeError {
            input: text.to_owned(),
        };
        let nums: Vec<u64> = parts
            .iter()
            .map(|p| p.parse::<u64>().map_err(|_| err()))
            .collect::<Result<_, _>>()?;
        match nums.as_slice() {
            [m, s] if *s < 60 => Ok(Seconds(m * 60 + s)),
            [h, m, s] if *m < 60 && *s < 60 => Ok(Seconds(h * 3600 + m * 60 + s)),
            _ => Err(err()),
        }
    }
}

impl Add for Seconds {
    type Output = Seconds;
    fn add(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 + rhs.0)
    }
}

impl Sub for Seconds {
    type Output = Seconds;
    fn sub(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 - rhs.0)
    }
}

impl Mul<u64> for Seconds {
    type Output = Seconds;
    fn mul(self, rhs: u64) -> Seconds {
        Seconds(self.0 * rhs)
    }
}

impl fmt::Display for Seconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{:02}:{:02}",
            self.0 / 3600,
            (self.0 % 3600) / 60,
            self.0 % 60
        )
    }
}

/// Error returned by [`Seconds::parse_hms`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseTimeError {
    /// The rejected input.
    pub input: String,
}

impl fmt::Display for ParseTimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid time syntax `{}` (expected H:MM:SS or M:SS)",
            self.input
        )
    }
}

impl std::error::Error for ParseTimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meters_km_roundtrip() {
        assert_eq!(Meters::from_km(0.5).as_u64(), 500);
        assert_eq!(Meters(2500).as_km(), 2.5);
    }

    #[test]
    fn meters_arithmetic() {
        assert_eq!(Meters(100) + Meters(200), Meters(300));
        assert_eq!(Meters(300) - Meters(100), Meters(200));
        assert_eq!(Meters(100) * 3, Meters(300));
        let mut m = Meters(1);
        m += Meters(2);
        assert_eq!(m, Meters(3));
    }

    #[test]
    fn div_ceil_and_floor() {
        assert_eq!(Meters(400).div_ceil(Meters(500)), 1);
        assert_eq!(Meters(700).div_ceil(Meters(500)), 2);
        assert_eq!(Meters(1000).div_ceil(Meters(500)), 2);
        assert_eq!(Meters(700).div_floor(Meters(500)), 1);
    }

    #[test]
    #[should_panic(expected = "zero distance")]
    fn div_by_zero_panics() {
        Meters(100).div_ceil(Meters(0));
    }

    #[test]
    fn speed_distance() {
        assert_eq!(KmPerHour(120).distance_in(Seconds(60)), Meters(2000));
        assert_eq!(KmPerHour(180).distance_in(Seconds(30)), Meters(1500));
        assert_eq!(KmPerHour(0).distance_in(Seconds(600)), Meters(0));
    }

    #[test]
    fn parse_hms_variants() {
        assert_eq!(Seconds::parse_hms("0:00"), Ok(Seconds(0)));
        assert_eq!(Seconds::parse_hms("4:30"), Ok(Seconds(270)));
        assert_eq!(Seconds::parse_hms("0:04:30"), Ok(Seconds(270)));
        assert_eq!(Seconds::parse_hms("1:00:00"), Ok(Seconds(3600)));
    }

    #[test]
    fn parse_hms_rejects_garbage() {
        assert!(Seconds::parse_hms("").is_err());
        assert!(Seconds::parse_hms("12").is_err());
        assert!(Seconds::parse_hms("1:99").is_err());
        assert!(Seconds::parse_hms("1:2:3:4").is_err());
        assert!(Seconds::parse_hms("a:30").is_err());
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Seconds(270)), "0:04:30");
        assert_eq!(format!("{}", Seconds(3661)), "1:01:01");
        assert_eq!(format!("{}", KmPerHour(120)), "120 km/h");
        assert_eq!(format!("{}", Meters(42)), "42 m");
    }

    #[test]
    fn minutes_constructors() {
        assert_eq!(Seconds::from_minutes(5), Seconds(300));
        assert_eq!(Seconds::from_minutes_f64(0.5), Seconds(30));
    }
}
