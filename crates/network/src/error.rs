//! Error types for network construction and discretisation.

use std::fmt;

/// Error raised while building or discretising a railway network.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetworkError {
    /// A track references a node that was never declared.
    UnknownNode {
        /// The offending node index.
        node: usize,
    },
    /// A track has zero length.
    EmptyTrack {
        /// The offending track name.
        track: String,
    },
    /// A track is assigned to no TTD or to more than one TTD.
    TtdCoverage {
        /// The offending track name.
        track: String,
        /// Number of TTDs claiming the track.
        count: usize,
    },
    /// A station references a track that was never declared.
    UnknownTrack {
        /// The offending track index.
        track: usize,
    },
    /// The network graph is not connected.
    Disconnected,
    /// Two entities share a name that must be unique.
    DuplicateName {
        /// The colliding name.
        name: String,
    },
    /// The spatial resolution is zero or larger than every track.
    BadResolution {
        /// Explanation of the failure.
        reason: String,
    },
    /// A TTD's segment subgraph contains a cycle, so "the chain between two
    /// occupied segments" (the paper's `between(e, f)`) is not unique.
    CyclicTtd {
        /// The offending TTD name.
        ttd: String,
    },
    /// A TTD's tracks do not form one contiguous piece of the network.
    DisconnectedTtd {
        /// The offending TTD name.
        ttd: String,
    },
    /// A schedule entry references an unknown station or train.
    UnknownReference {
        /// Human-readable description of the dangling reference.
        what: String,
    },
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::UnknownNode { node } => write!(f, "unknown node index {node}"),
            NetworkError::EmptyTrack { track } => write!(f, "track `{track}` has zero length"),
            NetworkError::TtdCoverage { track, count } => write!(
                f,
                "track `{track}` is covered by {count} TTDs (every track needs exactly one)"
            ),
            NetworkError::UnknownTrack { track } => write!(f, "unknown track index {track}"),
            NetworkError::Disconnected => write!(f, "network graph is not connected"),
            NetworkError::DuplicateName { name } => write!(f, "duplicate name `{name}`"),
            NetworkError::BadResolution { reason } => {
                write!(f, "invalid spatial resolution: {reason}")
            }
            NetworkError::CyclicTtd { ttd } => write!(
                f,
                "TTD `{ttd}` contains a cycle; VSS border placement between trains is ambiguous"
            ),
            NetworkError::DisconnectedTtd { ttd } => {
                write!(f, "TTD `{ttd}` is not contiguous")
            }
            NetworkError::UnknownReference { what } => write!(f, "unknown reference: {what}"),
        }
    }
}

impl std::error::Error for NetworkError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_specific() {
        assert!(format!("{}", NetworkError::Disconnected).contains("not connected"));
        assert!(format!(
            "{}",
            NetworkError::TtdCoverage {
                track: "t1".into(),
                count: 0
            }
        )
        .contains("t1"));
        assert!(format!("{}", NetworkError::CyclicTtd { ttd: "TTD3".into() }).contains("TTD3"));
    }
}
