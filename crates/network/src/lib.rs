//! # etcs-network — railway modelling for the ETCS Level 3 reproduction
//!
//! The input domain of Wille et al. (DATE 2021): macroscopic railway
//! networks ([`RailwayNetwork`]) with TTD sections and stations, trains and
//! schedules ([`Train`], [`Schedule`]), their discretisation into the
//! segment graph `G = (V, E)` of the paper's Section III-A
//! ([`DiscreteNet`]), VSS layouts ([`VssLayout`]) and the four bundled case
//! studies ([`fixtures`]).
//!
//! ## Quick start
//!
//! ```
//! use etcs_network::{fixtures, VssLayout};
//!
//! let scenario = fixtures::running_example();
//! let discrete = scenario.discretise()?;
//! // Pure TTD operation has one section per TTD …
//! assert_eq!(VssLayout::pure_ttd().section_count(&discrete), 4);
//! // … while the finest VSS layout has one per segment.
//! assert_eq!(
//!     VssLayout::full(&discrete).section_count(&discrete),
//!     discrete.num_edges(),
//! );
//! # Ok::<(), etcs_network::NetworkError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod discrete;
mod error;
pub mod fixtures;
mod format;
pub mod generator;
mod layout;
mod scenario;
mod schedule;
mod topology;
mod train;
mod units;

pub use discrete::{DiscreteNet, EdgeId, NodeId, NodeKind, Segment};
pub use error::NetworkError;
pub use format::{parse_scenario, write_scenario, ParseScenarioError};
pub use layout::VssLayout;
pub use scenario::Scenario;
pub use schedule::{Schedule, TrainRun};
pub use topology::{
    NetworkBuilder, RailwayNetwork, Station, StationId, TopoNodeId, Track, TrackId, Ttd, TtdId,
};
pub use train::{Train, TrainId};
pub use units::{KmPerHour, Meters, ParseTimeError, Seconds};
