//! End-to-end contract of the lazy task loops: bit-identical verdicts and
//! optima against the eager tasks, a stable obs vocabulary, and working
//! cancellation.

use etcs_core::{
    generate, optimize_incremental, verify, DesignOutcome, EncoderConfig, TaskError, VerifyOutcome,
};
use etcs_lazy::{
    generate_lazy, optimize_lazy, optimize_lazy_cancellable, verify_lazy, verify_lazy_obs,
    LazyConfig, SelectionStrategy,
};
use etcs_network::{fixtures, VssLayout};
use etcs_obs::{EventKind, Obs};
use etcs_sat::Interrupt;

fn costs(outcome: &DesignOutcome) -> Option<&[u64]> {
    match outcome {
        DesignOutcome::Solved { costs, .. } => Some(costs),
        DesignOutcome::Infeasible => None,
    }
}

#[test]
fn lazy_verification_matches_eager_on_running_example() {
    let scenario = fixtures::running_example();
    let config = EncoderConfig::default();
    let lazy = LazyConfig::default();

    // Pure TTD deadlocks (the paper's Example 2) under both paths …
    let (eager, _) = verify(&scenario, &VssLayout::pure_ttd(), &config).expect("well-formed");
    let (outcome, report) =
        verify_lazy(&scenario, &VssLayout::pure_ttd(), &config, &lazy).expect("well-formed");
    assert_eq!(eager.is_feasible(), outcome.is_feasible());
    assert!(report.rounds >= 1);

    // … and the generated layout works under both.
    let (designed, _) = generate(&scenario, &config).expect("well-formed");
    let layout = &designed.plan().expect("feasible").layout;
    let (eager, _) = verify(&scenario, layout, &config).expect("well-formed");
    let (outcome, report) = verify_lazy(&scenario, layout, &config, &lazy).expect("well-formed");
    assert!(eager.is_feasible() && outcome.is_feasible());
    // The relaxation starts without any separation clauses, so at least
    // one refinement round must have fired on a two-train scenario.
    assert!(report.clauses_added >= 1, "expected refinement to happen");
    if let VerifyOutcome::Feasible(plan) = &outcome {
        assert_eq!(plan.layout, *layout, "layout is an input, not a choice");
    }
}

#[test]
fn lazy_generation_matches_eager_border_optimum() {
    for scenario in [fixtures::running_example(), fixtures::convoy()] {
        let config = EncoderConfig::default();
        let (eager, _) = generate(&scenario, &config).expect("well-formed");
        let (outcome, report) =
            generate_lazy(&scenario, &config, &LazyConfig::default()).expect("well-formed");
        assert_eq!(
            costs(&eager),
            costs(&outcome),
            "{}: lazy generation must find the same minimal border count",
            scenario.name
        );
        assert!(report.rounds >= 1);
    }
}

#[test]
fn lazy_optimization_matches_eager_optima() {
    for scenario in [fixtures::running_example(), fixtures::convoy()] {
        let config = EncoderConfig::default();
        let (eager, _) = optimize_incremental(&scenario, &config).expect("well-formed");
        let (outcome, report) =
            optimize_lazy(&scenario, &config, &LazyConfig::default()).expect("well-formed");
        assert_eq!(
            costs(&eager),
            costs(&outcome),
            "{}: lazy optimisation must find the same (deadline, borders)",
            scenario.name
        );
        assert!(report.rounds >= 1);
    }
}

#[test]
fn all_selection_strategies_agree() {
    let scenario = fixtures::running_example();
    let config = EncoderConfig::default();
    let mut optima = Vec::new();
    for strategy in SelectionStrategy::ALL {
        let lazy = LazyConfig::with_strategy(strategy);
        let (outcome, _) = optimize_lazy(&scenario, &config, &lazy).expect("well-formed");
        optima.push(costs(&outcome).expect("feasible").to_vec());
    }
    assert_eq!(optima[0], optima[1], "all-violated vs first-violated");
    assert_eq!(optima[0], optima[2], "all-violated vs per-train");
}

#[test]
fn traced_lazy_run_emits_the_round_and_refine_vocabulary() {
    let scenario = fixtures::running_example();
    let config = EncoderConfig::default();
    let (designed, _) = generate(&scenario, &config).expect("well-formed");
    let layout = &designed.plan().expect("feasible").layout;
    let (obs, sink) = Obs::memory();
    let (outcome, report) =
        verify_lazy_obs(&scenario, layout, &config, &LazyConfig::default(), &obs)
            .expect("well-formed");
    assert!(outcome.is_feasible());

    let events = sink.events();
    let task_close = events
        .iter()
        .find(|e| e.kind == EventKind::SpanClose && e.name == "task.verify_lazy")
        .expect("task span closes");
    let rounds: Vec<_> = events
        .iter()
        .filter(|e| {
            e.kind == EventKind::SpanClose && e.name == "lazy.round" && e.parent == task_close.span
        })
        .collect();
    assert_eq!(rounds.len(), report.rounds, "one round span per round");
    assert_eq!(task_close.field_u64("rounds"), Some(report.rounds as u64));
    assert_eq!(
        task_close.field_u64("clauses_added"),
        Some(report.clauses_added as u64)
    );

    let refine_closes: Vec<_> = events
        .iter()
        .filter(|e| e.kind == EventKind::SpanClose && e.name == "lazy.refine")
        .collect();
    assert!(!refine_closes.is_empty(), "refinement must have fired");
    let clause_total: u64 = refine_closes
        .iter()
        .map(|e| e.field_u64("clauses").unwrap_or(0))
        .sum();
    assert_eq!(clause_total, report.clauses_added as u64);
    assert_eq!(obs.metrics().counter("lazy.rounds"), report.rounds as u64);
    assert_eq!(
        obs.metrics().counter("lazy.clauses_added"),
        report.clauses_added as u64
    );
}

#[test]
fn pre_fired_interrupt_cancels_the_lazy_loop() {
    let scenario = fixtures::running_example();
    let interrupt = Interrupt::new();
    interrupt.trigger();
    let err = optimize_lazy_cancellable(
        &scenario,
        &EncoderConfig::default(),
        &LazyConfig::default(),
        &interrupt,
        &Obs::disabled(),
    )
    .expect_err("must cancel");
    assert_eq!(err, TaskError::Cancelled);
}
