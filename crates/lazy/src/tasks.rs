//! The lazy task loops: [`verify_lazy`], [`generate_lazy`] and
//! [`optimize_lazy`], each with `*_obs` and `*_cancellable` variants
//! mirroring the eager entry points of `etcs-core`.
//!
//! Every loop follows the same CEGAR skeleton on one persistent
//! incremental solver:
//!
//! 1. encode the *relaxed* formula (`encode_with` + a [`ConstraintFamilies`]
//!    mask deferring separation/collision);
//! 2. solve; UNSAT of the relaxation is final UNSAT (the relaxation is a
//!    subset of the full formula, so its unsatisfiability transfers);
//! 3. decode the candidate plan and run the violation detector;
//! 4. no violations: the model satisfies the full eager semantics — done,
//!    with a final bit-check against `etcs-sim`'s validator;
//! 5. otherwise encode the selected violated instances as blocking clauses
//!    and go to 2. Termination: each round adds a clause the current model
//!    falsifies, and the instance space is finite.

use std::time::Instant;

use etcs_core::{
    encode_with, minimize_borders, ConstraintFamilies, DesignOutcome, EncoderConfig, Encoding,
    Instance, SolvedPlan, Stage2, TaskError, TaskKind, TaskReport, VerifyOutcome,
};
use etcs_network::{NetworkError, Scenario, VssLayout};
use etcs_obs::{Obs, Span};
use etcs_sat::{Interrupt, InterruptReason, PreprocessConfig, SatResult};

use crate::detect::detect;
use crate::refine::{refine, RefineState, SelectionStrategy};

/// Tuning knobs for the lazy loops.
#[derive(Clone, Copy, Debug)]
pub struct LazyConfig {
    /// Which violated instances to encode per round.
    pub strategy: SelectionStrategy,
    /// Families to emit eagerly anyway. The default defers all three lazy
    /// families ([`ConstraintFamilies::CORE_ONLY`]); keeping a family
    /// eager turns its detector scan off.
    pub eager: ConstraintFamilies,
}

impl Default for LazyConfig {
    fn default() -> Self {
        LazyConfig {
            strategy: SelectionStrategy::AllViolated,
            eager: ConstraintFamilies::CORE_ONLY,
        }
    }
}

impl LazyConfig {
    /// A config with the given strategy and everything else default.
    pub fn with_strategy(strategy: SelectionStrategy) -> Self {
        LazyConfig {
            strategy,
            ..LazyConfig::default()
        }
    }
}

/// A [`TaskReport`] plus the lazy loop's own counters.
#[derive(Debug)]
pub struct LazyReport {
    /// The usual encoding/search statistics (the `stats` field describes
    /// the *relaxed* encoding before refinement).
    pub report: TaskReport,
    /// CEGAR rounds run (SAT answers inspected by the detector, plus — for
    /// optimisation — the UNSAT deadline probes).
    pub rounds: usize,
    /// Blocking clauses added across all refinement rounds.
    pub clauses_added: usize,
}

/// Maps a fired [`Interrupt`] to the matching [`TaskError`] (same contract
/// as the private helper in `etcs-core`).
fn interrupt_error(interrupt: &Interrupt) -> TaskError {
    match interrupt.probe() {
        Some(InterruptReason::Cancelled) => TaskError::Cancelled,
        Some(InterruptReason::DeadlineExceeded) => TaskError::DeadlineExceeded,
        None => unreachable!("solver returned Unknown with neither budget nor interrupt fired"),
    }
}

/// Final bit-check: a fixpoint plan must pass the eager validator. Skipped
/// when `allow_immediate_reoccupation` is on, because `etcs-sim` implements
/// the paper-literal pass-through rule (endpoints included in the swept
/// path) and would reject plans the eager *encoder* accepts under that
/// config — the check would compare against the wrong oracle.
fn bit_check(inst: &Instance, plan: &SolvedPlan, enforce_deadlines: bool, config: &EncoderConfig) {
    if config.allow_immediate_reoccupation {
        return;
    }
    let report = etcs_sim::validate(inst, plan, enforce_deadlines);
    assert!(
        report.is_valid(),
        "lazy fixpoint plan failed eager validation: {:?}",
        report.violations
    );
}

/// Shared per-round bookkeeping for the three loops.
struct LoopState {
    rounds: usize,
    clauses_added: usize,
    calls: usize,
    refine: RefineState,
}

impl LoopState {
    fn new() -> Self {
        LoopState {
            rounds: 0,
            clauses_added: 0,
            calls: 0,
            refine: RefineState::new(),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn refine_round(
        &mut self,
        round: Span,
        enc: &mut Encoding,
        inst: &Instance,
        config: &EncoderConfig,
        violations: &[crate::LazyViolation],
        lazy: &LazyConfig,
        obs: &Obs,
        extra: &[(&'static str, etcs_obs::Value)],
    ) {
        let added = refine(
            &round,
            enc,
            inst,
            config,
            &mut self.refine,
            violations,
            lazy.strategy,
        );
        self.clauses_added += added;
        obs.counter_add("lazy.clauses_added", added as u64);
        let mut fields: Vec<(&'static str, etcs_obs::Value)> = vec![
            ("sat", true.into()),
            ("violations", violations.len().into()),
            ("clauses", added.into()),
        ];
        fields.extend_from_slice(extra);
        round.close_with(&fields);
    }
}

// ---------------------------------------------------------------------
// Task 1 — lazy verification
// ---------------------------------------------------------------------

/// Lazy [`etcs_core::verify`]: CEGAR over the relaxed encoding instead of
/// one monolithic solve. Returns bit-identical verdicts.
///
/// # Errors
///
/// Returns [`NetworkError`] if the scenario is malformed.
pub fn verify_lazy(
    scenario: &Scenario,
    layout: &VssLayout,
    config: &EncoderConfig,
    lazy: &LazyConfig,
) -> Result<(VerifyOutcome, LazyReport), NetworkError> {
    verify_lazy_obs(scenario, layout, config, lazy, &Obs::disabled())
}

/// [`verify_lazy`] with observability: a `task.verify_lazy` span wrapping
/// an `encode` child and one `lazy.round` child per CEGAR round (each with
/// a `lazy.refine` child when violations were found).
///
/// # Errors
///
/// Returns [`NetworkError`] if the scenario is malformed.
pub fn verify_lazy_obs(
    scenario: &Scenario,
    layout: &VssLayout,
    config: &EncoderConfig,
    lazy: &LazyConfig,
    obs: &Obs,
) -> Result<(VerifyOutcome, LazyReport), NetworkError> {
    match verify_lazy_cancellable(scenario, layout, config, lazy, &Interrupt::none(), obs) {
        Ok(r) => Ok(r),
        Err(TaskError::Network(e)) => Err(e),
        Err(other) => unreachable!("no interrupt installed: {other:?}"),
    }
}

/// [`verify_lazy_obs`] with cooperative cancellation (same contract as
/// [`etcs_core::verify_cancellable`]).
///
/// # Errors
///
/// Returns [`TaskError::Network`] if the scenario is malformed, or the
/// interrupt-mapped error if the token fired mid-solve.
pub fn verify_lazy_cancellable(
    scenario: &Scenario,
    layout: &VssLayout,
    config: &EncoderConfig,
    lazy: &LazyConfig,
    interrupt: &Interrupt,
    obs: &Obs,
) -> Result<(VerifyOutcome, LazyReport), TaskError> {
    let start = Instant::now();
    let task = obs.span_with(
        "task.verify_lazy",
        &[
            ("scenario", scenario.name.as_str().into()),
            ("strategy", lazy.strategy.name().into()),
        ],
    );
    let inst = Instance::new(scenario)?;
    let enc_span = task.child("encode");
    let mut enc = encode_with(&inst, config, &TaskKind::Verify(layout.clone()), lazy.eager);
    enc_span.close_with(&[
        ("vars", enc.stats.solver_vars.into()),
        ("clauses", enc.stats.clauses.into()),
    ]);
    enc.solver.set_obs(obs.clone());
    enc.solver.set_interrupt(interrupt.clone());
    if config.preprocess {
        enc.preprocess(&PreprocessConfig::default());
    }
    let stats = enc.stats;
    let mut state = LoopState::new();

    let outcome = loop {
        state.rounds += 1;
        state.calls += 1;
        obs.counter_add("lazy.rounds", 1);
        let round = task.child_with("lazy.round", &[("round", state.rounds.into())]);
        match enc.solver.solve() {
            SatResult::Sat(model) => {
                let mut plan = SolvedPlan::decode(&inst, &enc.vars, &model);
                // The verification layout is an input, not a solver choice.
                plan.layout = layout.clone();
                let violations = detect(&inst, &plan, config, lazy.eager);
                if violations.is_empty() {
                    round.close_with(&[("sat", true.into()), ("violations", 0usize.into())]);
                    break VerifyOutcome::Feasible(plan);
                }
                state.refine_round(round, &mut enc, &inst, config, &violations, lazy, obs, &[]);
            }
            SatResult::Unsat { .. } => {
                round.close_with(&[("sat", false.into())]);
                break VerifyOutcome::Infeasible;
            }
            SatResult::Unknown => {
                round.close_with(&[("interrupted", true.into())]);
                task.close_with(&[("interrupted", true.into())]);
                return Err(interrupt_error(interrupt));
            }
        }
    };

    if let VerifyOutcome::Feasible(plan) = &outcome {
        bit_check(&inst, plan, true, config);
    }
    let search = *enc.solver.stats();
    obs.counter_add("conflicts", search.conflicts);
    task.close_with(&[
        ("feasible", outcome.is_feasible().into()),
        ("rounds", state.rounds.into()),
        ("clauses_added", state.clauses_added.into()),
        ("conflicts", search.conflicts.into()),
    ]);
    Ok((
        outcome,
        LazyReport {
            report: TaskReport {
                stats,
                runtime: start.elapsed(),
                solver_calls: state.calls,
                search,
            },
            rounds: state.rounds,
            clauses_added: state.clauses_added,
        },
    ))
}

// ---------------------------------------------------------------------
// Task 2 — lazy layout generation
// ---------------------------------------------------------------------

/// Lazy [`etcs_core::generate`]: each round runs the border MaxSAT on the
/// relaxed formula; a violated optimum is refined and re-minimised.
/// Returns the same minimal border count as the eager task (the relaxed
/// optimum is a lower bound on the full optimum; a violation-free witness
/// at that cost closes the gap).
///
/// # Errors
///
/// Returns [`NetworkError`] if the scenario is malformed.
pub fn generate_lazy(
    scenario: &Scenario,
    config: &EncoderConfig,
    lazy: &LazyConfig,
) -> Result<(DesignOutcome, LazyReport), NetworkError> {
    generate_lazy_obs(scenario, config, lazy, &Obs::disabled())
}

/// [`generate_lazy`] with observability: a `task.generate_lazy` span with
/// an `encode` child and one `lazy.round` per CEGAR round, each wrapping
/// the round's `stage2` MaxSAT span.
///
/// # Errors
///
/// Returns [`NetworkError`] if the scenario is malformed.
pub fn generate_lazy_obs(
    scenario: &Scenario,
    config: &EncoderConfig,
    lazy: &LazyConfig,
    obs: &Obs,
) -> Result<(DesignOutcome, LazyReport), NetworkError> {
    match generate_lazy_cancellable(scenario, config, lazy, &Interrupt::none(), obs) {
        Ok(r) => Ok(r),
        Err(TaskError::Network(e)) => Err(e),
        Err(other) => unreachable!("no interrupt installed: {other:?}"),
    }
}

/// [`generate_lazy_obs`] with cooperative cancellation (same contract as
/// [`etcs_core::generate_cancellable`]).
///
/// # Errors
///
/// Returns [`TaskError::Network`] if the scenario is malformed, or the
/// interrupt-mapped error if the token fired mid-solve.
pub fn generate_lazy_cancellable(
    scenario: &Scenario,
    config: &EncoderConfig,
    lazy: &LazyConfig,
    interrupt: &Interrupt,
    obs: &Obs,
) -> Result<(DesignOutcome, LazyReport), TaskError> {
    let start = Instant::now();
    let task = obs.span_with(
        "task.generate_lazy",
        &[
            ("scenario", scenario.name.as_str().into()),
            ("strategy", lazy.strategy.name().into()),
        ],
    );
    let inst = Instance::new(scenario)?;
    let enc_span = task.child("encode");
    let mut enc = encode_with(&inst, config, &TaskKind::Generate, lazy.eager);
    enc_span.close_with(&[
        ("vars", enc.stats.solver_vars.into()),
        ("clauses", enc.stats.clauses.into()),
    ]);
    enc.solver.set_obs(obs.clone());
    enc.solver.set_interrupt(interrupt.clone());
    if config.preprocess {
        enc.preprocess(&PreprocessConfig::default());
    }
    let stats = enc.stats;
    let mut state = LoopState::new();

    let outcome = loop {
        state.rounds += 1;
        obs.counter_add("lazy.rounds", 1);
        let round = task.child_with("lazy.round", &[("round", state.rounds.into())]);
        let (result, stage_calls) = minimize_borders(&mut enc, &inst, &[], obs);
        state.calls += stage_calls;
        match result {
            Stage2::Solved(plan, cost) => {
                let violations = detect(&inst, &plan, config, lazy.eager);
                if violations.is_empty() {
                    round.close_with(&[
                        ("sat", true.into()),
                        ("violations", 0usize.into()),
                        ("borders", cost.into()),
                    ]);
                    break DesignOutcome::Solved {
                        plan,
                        costs: vec![cost],
                    };
                }
                state.refine_round(round, &mut enc, &inst, config, &violations, lazy, obs, &[]);
            }
            Stage2::Unsat => {
                round.close_with(&[("sat", false.into())]);
                break DesignOutcome::Infeasible;
            }
            Stage2::Interrupted => {
                round.close_with(&[("interrupted", true.into())]);
                task.close_with(&[("interrupted", true.into())]);
                return Err(interrupt_error(interrupt));
            }
        }
    };

    if let DesignOutcome::Solved { plan, .. } = &outcome {
        bit_check(&inst, plan, true, config);
    }
    let search = *enc.solver.stats();
    match &outcome {
        DesignOutcome::Solved { costs, .. } => task.close_with(&[
            ("feasible", true.into()),
            ("borders", costs[0].into()),
            ("rounds", state.rounds.into()),
            ("clauses_added", state.clauses_added.into()),
            ("solver_calls", state.calls.into()),
        ]),
        DesignOutcome::Infeasible => {
            task.close_with(&[("feasible", false.into()), ("rounds", state.rounds.into())])
        }
    }
    Ok((
        outcome,
        LazyReport {
            report: TaskReport {
                stats,
                runtime: start.elapsed(),
                solver_calls: state.calls,
                search,
            },
            rounds: state.rounds,
            clauses_added: state.clauses_added,
        },
    ))
}

// ---------------------------------------------------------------------
// Task 3 — lazy schedule optimisation
// ---------------------------------------------------------------------

/// Lazy [`etcs_core::optimize_incremental`]: a witness-bracketed search
/// over the deadline selectors, with an inner CEGAR loop per probe. The
/// first probe is *optimistic* — the completion lower bound, which on
/// uncongested instances is the optimum outright; if it is refuted, a
/// clean witness at the horizon brackets a binary search (deadline
/// feasibility is monotone, so one clean witness at `d` plus refuted
/// probes covering everything below pin the optimum). Refinement clauses
/// are deadline-independent (pure occupancy/border logic), so they
/// persist across probes; an UNSAT probe of the *refined* relaxation
/// still soundly rules the deadline out (the refined relaxation is
/// implied by the full formula). Stage 2 commits the optimal deadline as
/// unit clauses and reruns the border MaxSAT until its optimum is
/// violation-free. Returns bit-identical optima `(deadline, borders)` to
/// the eager loop.
///
/// # Errors
///
/// Returns [`NetworkError`] if the scenario is malformed.
pub fn optimize_lazy(
    scenario: &Scenario,
    config: &EncoderConfig,
    lazy: &LazyConfig,
) -> Result<(DesignOutcome, LazyReport), NetworkError> {
    optimize_lazy_obs(scenario, config, lazy, &Obs::disabled())
}

/// [`optimize_lazy`] with observability: a `task.optimize_lazy` span with
/// an `encode` child and one `lazy.round` per probe (fields: `round`,
/// `deadline`, `sat`, and on refinement `violations` / `clauses`).
///
/// # Errors
///
/// Returns [`NetworkError`] if the scenario is malformed.
pub fn optimize_lazy_obs(
    scenario: &Scenario,
    config: &EncoderConfig,
    lazy: &LazyConfig,
    obs: &Obs,
) -> Result<(DesignOutcome, LazyReport), NetworkError> {
    match optimize_lazy_cancellable(scenario, config, lazy, &Interrupt::none(), obs) {
        Ok(r) => Ok(r),
        Err(TaskError::Network(e)) => Err(e),
        Err(other) => unreachable!("no interrupt installed: {other:?}"),
    }
}

/// [`optimize_lazy_obs`] with cooperative cancellation (same contract as
/// [`etcs_core::optimize_incremental_cancellable`]).
///
/// # Errors
///
/// Returns [`TaskError::Network`] if the scenario is malformed, or the
/// interrupt-mapped error if the token fired mid-solve.
pub fn optimize_lazy_cancellable(
    scenario: &Scenario,
    config: &EncoderConfig,
    lazy: &LazyConfig,
    interrupt: &Interrupt,
    obs: &Obs,
) -> Result<(DesignOutcome, LazyReport), TaskError> {
    let start = Instant::now();
    let task = obs.span_with(
        "task.optimize_lazy",
        &[
            ("scenario", scenario.name.as_str().into()),
            ("strategy", lazy.strategy.name().into()),
        ],
    );
    let open = scenario.without_arrivals();
    let inst = Instance::new(&open)?;
    let enc_span = task.child("encode");
    let mut enc = encode_with(&inst, config, &TaskKind::OptimizeIncremental, lazy.eager);
    enc_span.close_with(&[
        ("vars", enc.stats.solver_vars.into()),
        ("clauses", enc.stats.clauses.into()),
    ]);
    enc.solver.set_obs(obs.clone());
    enc.solver.set_interrupt(interrupt.clone());
    if config.preprocess {
        enc.preprocess(&PreprocessConfig::default());
    }
    let stats = enc.stats;
    let mut state = LoopState::new();

    // Stage 1 — optimistic probe, then witness-bracketed binary search.
    // Deadline feasibility is monotone in `d` (a schedule done by `d' <
    // d` is done by `d`; the step selectors are built for exactly this),
    // so the optimum is pinned by one clean witness at `d` and refuted
    // probes covering everything below. The search keeps the invariant
    // "every deadline below `lo` is ruled out, `upper` (when set) carries
    // a clean witness". The first probe is the completion lower bound —
    // on uncongested instances it is the optimum, and refining against
    // its tightly-pinched cones activates the fewest families; probing
    // tight deadlines also matches the eager incremental loop's walk-up
    // order, whose refutations share learned clauses. If the bound is
    // refuted, one probe at the horizon fetches a clean witness, every
    // later clean witness drops `upper` to its *achieved* completion
    // step, every refuted probe raises `lo`, and probes land on the
    // midpoint in between — a pure one-step walk in either direction is
    // pathological when the optimum sits far from the starting end.
    let max_deadline = inst.t_max - 1;
    let lower = inst.completion_lower_bound().min(max_deadline);
    let mut lo = lower; // every deadline below this is ruled out
    let mut upper: Option<usize> = None; // tightest clean-witness deadline
    let mut d = lower; // optimistic first probe: the bound is usually tight
    loop {
        state.rounds += 1;
        state.calls += 1;
        obs.counter_add("lazy.rounds", 1);
        obs.counter_add("probes", 1);
        let round = task.child_with(
            "lazy.round",
            &[("round", state.rounds.into()), ("deadline", d.into())],
        );
        let assumptions = enc.deadline_probe_assumptions(&inst, d);
        let conflicts_before = enc.solver.stats().conflicts;
        let verdict = enc.solver.solve_with(&assumptions);
        obs.counter_add("conflicts", enc.solver.stats().conflicts - conflicts_before);
        match verdict {
            SatResult::Sat(model) => {
                let plan = SolvedPlan::decode(&inst, &enc.vars, &model);
                let violations = detect(&inst, &plan, config, lazy.eager);
                if violations.is_empty() {
                    let achieved = plan.completion_steps(&inst).saturating_sub(1).min(d);
                    debug_assert!(achieved >= lower, "witness beats the lower bound");
                    round.close_with(&[
                        ("sat", true.into()),
                        ("violations", 0usize.into()),
                        ("deadline", d.into()),
                        ("achieved", achieved.into()),
                    ]);
                    upper = Some(achieved);
                    if achieved <= lo {
                        break; // everything below the witness is ruled out
                    }
                    d = lo + (achieved - 1 - lo) / 2;
                } else {
                    state.refine_round(
                        round,
                        &mut enc,
                        &inst,
                        config,
                        &violations,
                        lazy,
                        obs,
                        &[("deadline", d.into())],
                    );
                }
            }
            SatResult::Unsat { .. } => {
                // Same level-0 burial as the eager incremental loop: the
                // refined relaxation is implied by the full formula, so
                // the refutation holds there too — and by monotonicity it
                // rules out every deadline below `d` as well.
                if let Some(&sel) = enc.step_selectors.get(d).and_then(|s| s.as_ref()) {
                    enc.solver.add_clause([!sel]);
                }
                round.close_with(&[("sat", false.into()), ("deadline", d.into())]);
                lo = d + 1;
                match upper {
                    // The loosest deadline is refuted: infeasible outright.
                    None if d >= max_deadline => break,
                    // The optimistic lower-bound probe failed — fetch a
                    // clean witness at the horizon to bracket the search.
                    None => d = max_deadline,
                    Some(u) if lo >= u => break,
                    Some(u) => d = lo + (u - 1 - lo) / 2,
                }
            }
            SatResult::Unknown => {
                round.close_with(&[("interrupted", true.into())]);
                task.close_with(&[("interrupted", true.into())]);
                return Err(interrupt_error(interrupt));
            }
        }
    }
    let Some(best_deadline) = upper else {
        let search = *enc.solver.stats();
        task.close_with(&[
            ("feasible", false.into()),
            ("rounds", state.rounds.into()),
            ("clauses_added", state.clauses_added.into()),
        ]);
        return Ok((
            DesignOutcome::Infeasible,
            LazyReport {
                report: TaskReport {
                    stats,
                    runtime: start.elapsed(),
                    solver_calls: state.calls,
                    search,
                },
                rounds: state.rounds,
                clauses_added: state.clauses_added,
            },
        ));
    };

    // Stage 2 — border MaxSAT at the optimal deadline, CEGAR-wrapped. The
    // violation-free witness from Stage 1 satisfies every clause any later
    // refinement can add (they are all implied by the full formula, which
    // the witness models), so the MaxSAT stays satisfiable throughout.
    // The optimum is final, so commit the deadline pin as unit clauses
    // instead of re-propagating thousands of assumption literals on every
    // descent call of the border MaxSAT — the solver is not probed at any
    // other deadline after this point.
    for &lit in &enc.deadline_probe_assumptions(&inst, best_deadline) {
        enc.solver.add_clause([lit]);
    }
    let (plan, border_cost) = loop {
        state.rounds += 1;
        obs.counter_add("lazy.rounds", 1);
        let round = task.child_with(
            "lazy.round",
            &[
                ("round", state.rounds.into()),
                ("deadline", best_deadline.into()),
            ],
        );
        let (result, stage_calls) = minimize_borders(&mut enc, &inst, &[], obs);
        state.calls += stage_calls;
        match result {
            Stage2::Solved(plan, cost) => {
                let violations = detect(&inst, &plan, config, lazy.eager);
                if violations.is_empty() {
                    round.close_with(&[
                        ("sat", true.into()),
                        ("violations", 0usize.into()),
                        ("borders", cost.into()),
                    ]);
                    break (plan, cost);
                }
                state.refine_round(
                    round,
                    &mut enc,
                    &inst,
                    config,
                    &violations,
                    lazy,
                    obs,
                    &[("deadline", best_deadline.into())],
                );
            }
            Stage2::Unsat => {
                unreachable!("a violation-free model exists at the probed deadline")
            }
            Stage2::Interrupted => {
                round.close_with(&[("interrupted", true.into())]);
                task.close_with(&[("interrupted", true.into())]);
                return Err(interrupt_error(interrupt));
            }
        }
    };

    bit_check(&inst, &plan, false, config);
    let search = *enc.solver.stats();
    task.close_with(&[
        ("feasible", true.into()),
        ("deadline", best_deadline.into()),
        ("borders", border_cost.into()),
        ("rounds", state.rounds.into()),
        ("clauses_added", state.clauses_added.into()),
        ("solver_calls", state.calls.into()),
        ("conflicts", search.conflicts.into()),
    ]);
    Ok((
        DesignOutcome::Solved {
            plan,
            costs: vec![best_deadline as u64 + 1, border_cost],
        },
        LazyReport {
            report: TaskReport {
                stats,
                runtime: start.elapsed(),
                solver_calls: state.calls,
                search,
            },
            rounds: state.rounds,
            clauses_added: state.clauses_added,
        },
    ))
}
