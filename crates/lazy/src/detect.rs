//! The counterexample oracle: finds concrete violated instances of the
//! deferred constraint families in a candidate plan.
//!
//! The scan mirrors `etcs-sim`'s validator rules for the three lazy
//! families — shared segments, missing VSS borders, trains passing through
//! one another — but at *instance* granularity (the validator deduplicates
//! per train pair and step, which is too coarse to drive refinement) and
//! aware of the [`EncoderConfig`] in force: with
//! `allow_immediate_reoccupation` the encoder excludes a move's endpoints
//! from the swept path, so the detector must too, or it would report
//! violations the refiner can never block and the loop would not
//! terminate.

use etcs_core::{ConstraintFamilies, EncoderConfig, Instance, SolvedPlan};
use etcs_network::EdgeId;

/// One concrete violated instance of a deferred constraint family.
///
/// Every variant carries exactly the indices needed to emit the blocking
/// clause the eager encoder would have emitted for (or one implied by) the
/// same instance — see `clause_for` in the refiner.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LazyViolation {
    /// Two trains occupy the same segment at one step.
    Shared {
        /// Offending step.
        step: usize,
        /// The contested segment.
        edge: EdgeId,
        /// The two trains (schedule indices, `trains.0 < trains.1`).
        trains: (usize, usize),
    },
    /// Two trains share a TTD with no active VSS border on the chain
    /// between their segments.
    MissingBorder {
        /// Offending step.
        step: usize,
        /// The two trains (`trains.0 < trains.1`).
        trains: (usize, usize),
        /// The occupied segments (`edges.0` by `trains.0`).
        edges: (EdgeId, EdgeId),
    },
    /// A train's move sweeps a segment another train occupies.
    PassThrough {
        /// Step of the move's start.
        step: usize,
        /// The moving train.
        mover: usize,
        /// The train in its way.
        other: usize,
        /// The move's start segment (occupied by `mover` at `step`).
        from: EdgeId,
        /// The move's end segment (occupied by `mover` at `step + 1`).
        to: EdgeId,
        /// The swept segment `other` occupies.
        edge: EdgeId,
        /// The step (`step` or `step + 1`) at which `other` is on `edge`.
        at: usize,
    },
}

impl LazyViolation {
    /// A stable short label for the violated family, matching the
    /// `sim.mismatch` vocabulary of `etcs-sim`.
    pub fn kind(&self) -> &'static str {
        match self {
            LazyViolation::Shared { .. } => "shared",
            LazyViolation::MissingBorder { .. } => "border",
            LazyViolation::PassThrough { .. } => "pass",
        }
    }

    /// The primary train of the instance — the lower-indexed train of a
    /// pairwise conflict, or the mover of a pass-through. The per-train
    /// selection strategy buckets instances by this index.
    pub fn primary_train(&self) -> usize {
        match self {
            LazyViolation::Shared { trains, .. } | LazyViolation::MissingBorder { trains, .. } => {
                trains.0
            }
            LazyViolation::PassThrough { mover, .. } => *mover,
        }
    }
}

/// Scans `plan` for violated instances of every family `eager` defers,
/// in deterministic order (time-major, then train pairs, then segments).
///
/// Families that were emitted eagerly are skipped: the solver already
/// enforced them, so scanning would only burn time proving the obvious.
pub fn detect(
    inst: &Instance,
    plan: &SolvedPlan,
    config: &EncoderConfig,
    eager: ConstraintFamilies,
) -> Vec<LazyViolation> {
    let mut out = Vec::new();
    let num_trains = plan.plans.len();
    if num_trains < 2 {
        return out; // every lazy family is pairwise
    }
    let net = &inst.net;
    let layout = &plan.layout;

    if !eager.shared || !eager.separation {
        for t in 0..inst.t_max {
            for i in 0..num_trains {
                for j in (i + 1)..num_trains {
                    let pi = &plan.plans[i].positions[t];
                    let pj = &plan.plans[j].positions[t];
                    for &e in pi {
                        for &f in pj {
                            if e == f {
                                if !eager.shared {
                                    out.push(LazyViolation::Shared {
                                        step: t,
                                        edge: e,
                                        trains: (i, j),
                                    });
                                }
                                continue;
                            }
                            if eager.separation || net.segment(e).ttd != net.segment(f).ttd {
                                continue;
                            }
                            let between = net.between(e, f).expect("same-TTD edges connect");
                            if !between.iter().any(|&n| layout.is_border(net, n)) {
                                out.push(LazyViolation::MissingBorder {
                                    step: t,
                                    trains: (i, j),
                                    edges: (e, f),
                                });
                            }
                        }
                    }
                }
            }
        }
    }

    if !eager.collision {
        // The same (from, to) move pairs recur at every step, and
        // `path_edges` is the expensive part of the scan — cache per call.
        let mut path_cache: std::collections::BTreeMap<(EdgeId, EdgeId, u32), Vec<EdgeId>> =
            std::collections::BTreeMap::new();
        for (mover, (p, spec)) in plan.plans.iter().zip(&inst.trains).enumerate() {
            for t in spec.dep_step..inst.t_max.saturating_sub(1) {
                let now = &p.positions[t];
                let next = &p.positions[t + 1];
                if now.is_empty() || next.is_empty() {
                    continue;
                }
                for &e in now {
                    for &f in next {
                        if e == f {
                            continue;
                        }
                        if !matches!(inst.dist(e, f), Some(d) if d >= 1 && d <= spec.speed) {
                            continue;
                        }
                        let path = path_cache.entry((e, f, spec.speed)).or_insert_with(|| {
                            let mut path = net.path_edges(e, f, spec.speed);
                            if config.allow_immediate_reoccupation {
                                path.retain(|&g| g != e && g != f);
                            }
                            path
                        });
                        for &g in path.iter() {
                            for (other, q) in plan.plans.iter().enumerate() {
                                if other == mover {
                                    continue;
                                }
                                for at in [t, t + 1] {
                                    if q.positions[at].contains(&g) {
                                        out.push(LazyViolation::PassThrough {
                                            step: t,
                                            mover,
                                            other,
                                            from: e,
                                            to: f,
                                            edge: g,
                                            at,
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    out
}
