//! # etcs-lazy — counterexample-guided lazy constraint solving
//!
//! A CEGAR layer over `etcs-core`'s SAT encoding: instead of eagerly
//! emitting every pairwise train-interaction constraint — shared-segment
//! mutual exclusion, same-TTD VSS separation, no-passing sweeps, together
//! the vast majority of the clause count on dense scenarios — the relaxed
//! formula carries only the core (shape, movement, completion, task
//! goals). Candidate models are checked by a violation detector built on
//! `etcs-sim`'s validator semantics, and only the concretely violated
//! instances are encoded as blocking clauses on the same persistent
//! incremental solver.
//!
//! * **Soundness** — every refinement clause is implied by the eager
//!   encoding, so UNSAT of the relaxation (plus refinements) transfers to
//!   the full formula.
//! * **Completeness** — a violation-free model satisfies the full eager
//!   semantics by construction of the detector; final answers are
//!   bit-checked against `etcs-sim::validate`.
//! * **Termination** — each round adds at least one clause the current
//!   model falsifies, drawn from a finite instance space.
//!
//! See `DESIGN.md` §12 for the full argument, including why the
//! optimisation walk-up and the border MaxSAT stay exact under
//! refinement.
//!
//! ## Quick start
//!
//! ```
//! use etcs_core::EncoderConfig;
//! use etcs_lazy::{verify_lazy, LazyConfig};
//! use etcs_network::{fixtures, VssLayout};
//!
//! let scenario = fixtures::running_example();
//! let (outcome, report) = verify_lazy(
//!     &scenario,
//!     &VssLayout::pure_ttd(),
//!     &EncoderConfig::default(),
//!     &LazyConfig::default(),
//! )?;
//! assert!(!outcome.is_feasible(), "same verdict as eager verification");
//! assert!(report.rounds >= 1);
//! # Ok::<(), etcs_network::NetworkError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod detect;
mod refine;
mod tasks;

pub use detect::{detect, LazyViolation};
pub use refine::{select, SelectionStrategy};
pub use tasks::{
    generate_lazy, generate_lazy_cancellable, generate_lazy_obs, optimize_lazy,
    optimize_lazy_cancellable, optimize_lazy_obs, verify_lazy, verify_lazy_cancellable,
    verify_lazy_obs, LazyConfig, LazyReport,
};

use etcs_core::ConstraintFamilies;
use etcs_lint::LazyProfile;

/// The `etcs-lint` allowlist matching a relaxed encoding: the families
/// `eager` defers stay *declared* as (empty) groups, which the linter
/// would otherwise flag as under-constrained. Pass the profile to
/// `audit_with_profile` / `EncodingTrace::lint_with` when linting a
/// relaxed formula.
pub fn lint_profile(eager: ConstraintFamilies) -> LazyProfile {
    let mut profile = LazyProfile::new();
    for group in eager.relaxed_groups() {
        profile = profile.allow_group(group);
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use etcs_core::{encode_with, EncoderConfig, Instance, TaskKind};
    use etcs_network::fixtures;

    #[test]
    fn lint_profile_covers_exactly_the_relaxed_groups() {
        let profile = lint_profile(ConstraintFamilies::CORE_ONLY);
        assert!(profile.allows("separation"));
        assert!(profile.allows("collision"));
        assert!(!profile.allows("shape[T1]"));
        let none = lint_profile(ConstraintFamilies::ALL);
        assert!(!none.allows("separation"));
    }

    #[test]
    fn relaxed_trace_lints_clean_under_the_profile() {
        let scenario = fixtures::running_example();
        let inst = Instance::new(&scenario).expect("valid");
        let config = EncoderConfig {
            trace: true,
            ..EncoderConfig::default()
        };
        let enc = encode_with(
            &inst,
            &config,
            &TaskKind::Generate,
            ConstraintFamilies::CORE_ONLY,
        );
        let trace = enc.trace.as_ref().expect("trace enabled");
        let findings = trace.lint_with(&lint_profile(ConstraintFamilies::CORE_ONLY));
        assert!(
            findings.is_empty(),
            "relaxed encoding must lint clean with the profile: {findings:?}"
        );
    }
}
