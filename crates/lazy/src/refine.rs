//! Refinement: activating the constraint families behind violated
//! instances, and the Engels–Wille selection strategies deciding *which*
//! instances drive activation each round.
//!
//! Every emitted clause is one the eager encoder would have emitted for
//! the same family (separation) or mirrors its sweep-variable factoring
//! exactly (pass-through), so the refined relaxation is always implied by
//! the full eager encoding. That implication is the soundness argument of
//! the whole loop — see `DESIGN.md` §12.

use std::collections::BTreeMap;

use etcs_core::{EncoderConfig, Encoding, Instance};
use etcs_network::{EdgeId, NodeKind, TtdId};
use etcs_obs::Span;
use etcs_sat::{CnfSink, Lit};

use crate::detect::LazyViolation;

/// Which violated instances to encode per refinement round — the three
/// strategies of the lazy-evaluation literature (Engels & Wille).
///
/// All three are sound and complete (each refinement clause blocks the
/// current model, so every round makes progress); they trade rounds
/// against clauses. Adding everything converges in the fewest rounds but
/// can over-constrain with clauses that never matter again; adding one
/// instance keeps the formula minimal at the cost of many cheap re-solves.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SelectionStrategy {
    /// Encode every violated instance found this round (the default).
    #[default]
    AllViolated,
    /// Encode only the first violated instance (scan order: time-major).
    FirstViolated,
    /// Encode the first violated instance of each primary train.
    PerTrain,
}

impl SelectionStrategy {
    /// All strategies, for exhaustive differential testing.
    pub const ALL: [SelectionStrategy; 3] = [
        SelectionStrategy::AllViolated,
        SelectionStrategy::FirstViolated,
        SelectionStrategy::PerTrain,
    ];

    /// Stable kebab-case name, used in obs fields and the `served` schema.
    pub fn name(self) -> &'static str {
        match self {
            SelectionStrategy::AllViolated => "all-violated",
            SelectionStrategy::FirstViolated => "first-violated",
            SelectionStrategy::PerTrain => "per-train",
        }
    }

    /// Inverse of [`SelectionStrategy::name`], for CLI parsing.
    pub fn parse(s: &str) -> Option<SelectionStrategy> {
        match s {
            "all-violated" => Some(SelectionStrategy::AllViolated),
            "first-violated" => Some(SelectionStrategy::FirstViolated),
            "per-train" => Some(SelectionStrategy::PerTrain),
            _ => None,
        }
    }
}

/// Applies `strategy` to the round's violation list (which is in
/// deterministic scan order), returning the instances to encode.
pub fn select(violations: &[LazyViolation], strategy: SelectionStrategy) -> Vec<&LazyViolation> {
    match strategy {
        SelectionStrategy::AllViolated => violations.iter().collect(),
        SelectionStrategy::FirstViolated => violations.iter().take(1).collect(),
        SelectionStrategy::PerTrain => {
            let mut seen = Vec::new();
            let mut picked = Vec::new();
            for v in violations {
                let tr = v.primary_train();
                if !seen.contains(&tr) {
                    seen.push(tr);
                    picked.push(v);
                }
            }
            picked
        }
    }
}

/// The constraint *family slice* a violated instance activates.
/// Refinement is family × time-band granular: one shared/missing-border
/// instance activates the separation family of its TTD, one pass-through
/// instance the sweep family of its `(from, to)` move — every instance
/// the eager encoder would have emitted for that family, across all
/// trains, within the violation's [`BAND`]-step time band. Two violations
/// with equal signatures expand to the same slice, so only one of them is
/// ever encoded.
///
/// Instance-pointwise blocking (the first implementation) made the solver
/// slide the same conflict one step or one train over, round after round,
/// re-discovering the eager family one instance at a time; activating
/// across trains makes one round per conflict site suffice. The time
/// banding is the other half of the bargain: conflicts cluster in the
/// steps where schedules actually cross, so a family activated for all
/// `t_max` steps would mostly emit clauses the solver never touches. A
/// family slice that never sees a violation costs nothing — that is the
/// lazy win this trades instance-precision for.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Signature {
    /// Separation family of one TTD (shared + missing-border), one band.
    Separation(u32, u32),
    /// Sweep family of one `(from, to)` move, one band.
    Pass(u32, u32, u32),
}

/// Width of an activation time band, in steps. Violations cluster in the
/// steps where schedules actually cross, so activating a family for all
/// `t_max` steps would mostly emit clauses the solver never touches —
/// banding keeps the refined formula proportional to the *conflicting*
/// part of the horizon. Wider bands converge in fewer rounds; narrower
/// bands keep the formula smaller. Eight steps (a few headways at the
/// default temporal resolution) balances the two on the shipped regimes.
const BAND: usize = 8;

/// The step range a band covers, clipped to `limit`.
fn band_steps(band: u32, limit: usize) -> std::ops::Range<usize> {
    let lo = band as usize * BAND;
    lo..((band as usize + 1) * BAND).min(limit)
}

fn v_step(v: &LazyViolation) -> usize {
    match *v {
        LazyViolation::Shared { step, .. }
        | LazyViolation::MissingBorder { step, .. }
        | LazyViolation::PassThrough { step, .. } => step,
    }
}

fn signature(inst: &Instance, v: &LazyViolation) -> Signature {
    let band = (v_step(v) / BAND) as u32;
    match *v {
        LazyViolation::Shared { edge, .. } => {
            Signature::Separation(inst.net.segment(edge).ttd.0, band)
        }
        LazyViolation::MissingBorder { edges: (e, _), .. } => {
            Signature::Separation(inst.net.segment(e).ttd.0, band)
        }
        LazyViolation::PassThrough { from, to, .. } => {
            Signature::Pass(from.index() as u32, to.index() as u32, band)
        }
    }
}

/// Cross-round refinement state: which families are already active, and
/// the sweep variables allocated so far (shared across pass families,
/// exactly as the eager encoder shares them across moves — without the
/// sharing, the flat resolvent form emits several times the eager clause
/// mass on dense scenarios, and the bigger formula eats the lazy win).
pub(crate) struct RefineState {
    encoded: Vec<Signature>,
    /// `(mover, step, segment)` → sweep literal: "the mover crosses the
    /// segment during the step", excluding every other train from it.
    sweep: BTreeMap<(usize, usize, u32), Lit>,
}

impl RefineState {
    pub(crate) fn new() -> Self {
        RefineState {
            encoded: Vec::new(),
            sweep: BTreeMap::new(),
        }
    }
}

/// Emits the full separation family of one TTD: for every same-TTD
/// segment pair and every train pair, the shared-segment exclusion
/// (`e == f`) or the missing-border clause (`e != f`, skipped when a
/// forced TTD border already separates the pair) — clause-for-clause what
/// the eager encoder's `separation` group holds for this TTD.
fn emit_separation(enc: &mut Encoding, inst: &Instance, ttd: u32, band: u32) -> usize {
    let steps = band_steps(band, inst.t_max);
    let num_trains = inst.trains.len();
    let edges = inst.net.ttd_edges(TtdId(ttd)).to_vec();
    let mut added = 0usize;
    for (a, &e) in edges.iter().enumerate() {
        for &f in &edges[a..] {
            if e == f {
                for i in 0..num_trains {
                    for j in (i + 1)..num_trains {
                        for t in steps.clone() {
                            let (Some(occ_i), Some(occ_j)) =
                                (enc.vars.occ_lit(i, t, e), enc.vars.occ_lit(j, t, e))
                            else {
                                continue;
                            };
                            enc.solver.add_clause([!occ_i, !occ_j]);
                            added += 1;
                        }
                    }
                }
                continue;
            }
            let mut borders = Vec::new();
            let mut forced = false;
            for n in inst.net.between(e, f).expect("same-TTD edges connect") {
                if inst.net.node_kind(n) == NodeKind::TtdBorder {
                    forced = true; // a forced border already separates the pair
                    break;
                }
                if let Some(b) = enc.vars.border[n.index()] {
                    borders.push(b.positive());
                }
            }
            if forced {
                continue;
            }
            // Ordered train pairs: `i` on `e` and `j` on `f` is a
            // different eager clause from `i` on `f` and `j` on `e`.
            for i in 0..num_trains {
                for j in 0..num_trains {
                    if i == j {
                        continue;
                    }
                    for t in steps.clone() {
                        let (Some(occ_i), Some(occ_j)) =
                            (enc.vars.occ_lit(i, t, e), enc.vars.occ_lit(j, t, f))
                        else {
                            continue;
                        };
                        let mut clause = vec![!occ_i, !occ_j];
                        clause.extend_from_slice(&borders);
                        enc.solver.add_clause(clause);
                        added += 1;
                    }
                }
            }
        }
    }
    added
}

/// Emits the full sweep family of one `(from, to)` move, mirroring the
/// eager factoring: a sweep variable per `(mover, step, swept segment)` —
/// shared with every other activated move through [`RefineState`] — with
/// one ternary `occ_from ∧ occ_to ⇒ sweep` per move and two exclusivity
/// binaries `sweep ⇒ ¬occ_other` per other train, emitted once when the
/// variable is allocated.
///
/// The per-mover guards replay the eager ones exactly: the move distance
/// must be within the mover's speed, the swept path is *that* mover's
/// (paths depend on speed, and on `allow_immediate_reoccupation`, which
/// drops the endpoints), and uncontested segments are skipped. The
/// auxiliary variables keep the loop sound: any model of the full eager
/// encoding extends to them (set each sweep variable to `occ_from ∧
/// occ_to` over its activated moves; the exclusivity binaries then hold
/// because the eager no-passing clauses do), so UNSAT of the refined
/// relaxation still transfers to the full formula, and a violation-free
/// witness extends the same way.
fn emit_pass(
    enc: &mut Encoding,
    inst: &Instance,
    config: &EncoderConfig,
    state: &mut RefineState,
    from: EdgeId,
    to: EdgeId,
    band: u32,
) -> usize {
    let steps = band_steps(band, inst.t_max.saturating_sub(1));
    let num_trains = inst.trains.len();
    let mut added = 0usize;
    for mover in 0..num_trains {
        let spec = &inst.trains[mover];
        if !matches!(inst.dist(from, to), Some(d) if d >= 1 && d <= spec.speed) {
            continue;
        }
        let mut path = inst.net.path_edges(from, to, spec.speed);
        if config.allow_immediate_reoccupation {
            path.retain(|&g| g != from && g != to);
        }
        for t in steps.clone() {
            if t < spec.dep_step {
                continue;
            }
            let (Some(occ_e), Some(occ_f)) = (
                enc.vars.occ_lit(mover, t, from),
                enc.vars.occ_lit(mover, t + 1, to),
            ) else {
                continue;
            };
            for &g in &path {
                let contested = (0..num_trains).any(|other| {
                    other != mover
                        && (enc.vars.occ_lit(other, t, g).is_some()
                            || enc.vars.occ_lit(other, t + 1, g).is_some())
                });
                if !contested {
                    continue;
                }
                let key = (mover, t, g.index() as u32);
                let s = match state.sweep.get(&key) {
                    Some(&s) => s,
                    None => {
                        let s = CnfSink::new_var(&mut enc.solver).positive();
                        state.sweep.insert(key, s);
                        for other in 0..num_trains {
                            if other == mover {
                                continue;
                            }
                            for at in [t, t + 1] {
                                if let Some(occ_g) = enc.vars.occ_lit(other, at, g) {
                                    enc.solver.add_clause([!s, !occ_g]);
                                    added += 1;
                                }
                            }
                        }
                        s
                    }
                };
                enc.solver.add_clause([!occ_e, !occ_f, s]);
                added += 1;
            }
        }
    }
    added
}

/// One refinement round: selects instances per `strategy`, activates the
/// families they belong to on the persistent solver, and emits a
/// `lazy.refine` span under `round`. Returns the number of clauses added.
///
/// Panics if no clause could be emitted for a non-empty violation list —
/// that would mean the loop cannot make progress and would spin forever,
/// so it is a bug, not a recoverable state. (A detected instance's own
/// occupancy variables exist by construction — the decoder read them —
/// so its family always contributes at least one fresh clause.)
pub(crate) fn refine(
    round: &Span,
    enc: &mut Encoding,
    inst: &Instance,
    config: &EncoderConfig,
    state: &mut RefineState,
    violations: &[LazyViolation],
    strategy: SelectionStrategy,
) -> usize {
    let selected = select(violations, strategy);
    let span = round.child_with(
        "lazy.refine",
        &[
            ("strategy", strategy.name().into()),
            ("violations", violations.len().into()),
            ("selected", selected.len().into()),
        ],
    );
    let mut added = 0usize;
    for v in selected {
        let sig = signature(inst, v);
        if state.encoded.contains(&sig) {
            continue; // the family is already fully active
        }
        state.encoded.push(sig);
        added += match sig {
            Signature::Separation(ttd, band) => emit_separation(enc, inst, ttd, band),
            Signature::Pass(_, _, band) => {
                let LazyViolation::PassThrough { from, to, .. } = *v else {
                    unreachable!("pass signature from a pass violation")
                };
                emit_pass(enc, inst, config, state, from, to, band)
            }
        };
    }
    span.close_with(&[("clauses", added.into())]);
    assert!(
        added > 0 || violations.is_empty(),
        "refinement made no progress on {} violations — the loop would not terminate",
        violations.len()
    );
    added
}
