//! # etcs-obs — structured run observability
//!
//! A dependency-free tracing/metrics subsystem for the ETCS Level 3
//! workspace: lightweight spans and events, a registry of named metrics,
//! and pluggable sinks (null, in-memory for tests, JSONL file for
//! replayable trace artifacts).
//!
//! The central type is the [`Obs`] handle. A **disabled** handle
//! ([`Obs::disabled`], the default everywhere) is a `None` inside — every
//! instrumentation call is a branch on that option and returns without
//! allocating, so instrumented hot paths cost nothing when tracing is off.
//! An **enabled** handle clones cheaply (`Arc`) and is `Send + Sync`, so
//! one handle can observe all workers of a parallel run; events carry a
//! globally ordered sequence number.
//!
//! ```
//! use etcs_obs::Obs;
//!
//! let (obs, sink) = Obs::memory();
//! let span = obs.span("task.optimize");
//! span.event("probe.result", &[("deadline", 7u64.into()), ("sat", true.into())]);
//! obs.counter_add("probes", 1);
//! span.close_with(&[("solver_calls", 3u64.into())]);
//! obs.flush_metrics();
//!
//! let events = sink.events();
//! assert_eq!(events[0].name, "task.optimize"); // span_open
//! assert_eq!(events[1].field_u64("deadline"), Some(7));
//! assert!(events.iter().any(|e| e.name == "probes")); // metric row
//! ```
//!
//! The JSONL schema (one event per line, stable field set) is documented on
//! [`Event::to_json`]; [`json::parse`] can re-read it, which is how the CI
//! smoke step and the trace tests validate emitted artifacts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod json;
pub mod metrics;
pub mod sink;

pub use event::{Event, EventKind, Value};
pub use metrics::{Histogram, MetricsRegistry};
pub use sink::{JsonlSink, MemorySink, NullSink, Sink};

use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

struct Inner {
    sink: Box<dyn Sink>,
    epoch: Instant,
    seq: AtomicU64,
    next_span: AtomicU64,
    metrics: Mutex<MetricsRegistry>,
}

/// The observability handle threaded through solver, tasks and parallel
/// layers. See the crate docs for the enabled/disabled contract.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<Inner>>,
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl Obs {
    /// The no-op handle: every call is a branch and an early return.
    pub fn disabled() -> Self {
        Obs { inner: None }
    }

    /// An enabled handle delivering to `sink`.
    pub fn with_sink(sink: impl Sink + 'static) -> Self {
        Obs {
            inner: Some(Arc::new(Inner {
                sink: Box::new(sink),
                epoch: Instant::now(),
                seq: AtomicU64::new(0),
                next_span: AtomicU64::new(1),
                metrics: Mutex::new(MetricsRegistry::new()),
            })),
        }
    }

    /// An enabled handle recording into memory, plus the test-side handle
    /// to read the events back.
    pub fn memory() -> (Self, MemorySink) {
        let sink = MemorySink::new();
        (Self::with_sink(sink.clone()), sink)
    }

    /// An enabled handle writing JSONL to the (truncated) file at `path`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be created.
    pub fn jsonl(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(Self::with_sink(JsonlSink::create(path)?))
    }

    /// `true` when events actually go anywhere.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn emit(
        &self,
        kind: EventKind,
        name: &'static str,
        span: Option<u64>,
        parent: Option<u64>,
        fields: &[(&'static str, Value)],
    ) {
        let Some(inner) = &self.inner else { return };
        let event = Event {
            seq: inner.seq.fetch_add(1, Ordering::Relaxed),
            t_us: inner.epoch.elapsed().as_micros() as u64,
            kind,
            name,
            span,
            parent,
            fields: fields.to_vec(),
        };
        inner.sink.record(&event);
    }

    /// Opens a root span. Disabled handles return a no-op guard without
    /// allocating.
    pub fn span(&self, name: &'static str) -> Span {
        self.span_inner(name, None, &[])
    }

    /// Opens a root span with fields on the `span_open` event.
    pub fn span_with(&self, name: &'static str, fields: &[(&'static str, Value)]) -> Span {
        self.span_inner(name, None, fields)
    }

    fn span_inner(
        &self,
        name: &'static str,
        parent: Option<u64>,
        fields: &[(&'static str, Value)],
    ) -> Span {
        let Some(inner) = &self.inner else {
            return Span { state: None };
        };
        let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
        self.emit(EventKind::SpanOpen, name, Some(id), parent, fields);
        Span {
            state: Some(SpanState {
                obs: self.clone(),
                name,
                id,
                parent,
                start: Instant::now(),
            }),
        }
    }

    /// Emits a point event not attached to any span.
    pub fn event(&self, name: &'static str, fields: &[(&'static str, Value)]) {
        self.emit(EventKind::Point, name, None, None, fields);
    }

    /// Adds to a named counter in the metrics registry.
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        let Some(inner) = &self.inner else { return };
        inner
            .metrics
            .lock()
            .expect("metrics poisoned")
            .counter_add(name, delta);
    }

    /// Sets a named gauge in the metrics registry.
    pub fn gauge_set(&self, name: &'static str, value: f64) {
        let Some(inner) = &self.inner else { return };
        inner
            .metrics
            .lock()
            .expect("metrics poisoned")
            .gauge_set(name, value);
    }

    /// Records a histogram sample in the metrics registry.
    pub fn histogram_record(&self, name: &'static str, value: u64) {
        let Some(inner) = &self.inner else { return };
        inner
            .metrics
            .lock()
            .expect("metrics poisoned")
            .histogram_record(name, value);
    }

    /// A snapshot of the metrics registry (empty for disabled handles).
    pub fn metrics(&self) -> MetricsRegistry {
        match &self.inner {
            Some(inner) => inner.metrics.lock().expect("metrics poisoned").clone(),
            None => MetricsRegistry::new(),
        }
    }

    /// Emits one [`EventKind::Metric`] event per registered metric
    /// (counters: `value`; gauges: `value`; histograms: `count`, `sum`,
    /// `min`, `max`) and leaves the registry intact.
    pub fn flush_metrics(&self) {
        let Some(inner) = &self.inner else { return };
        let snapshot = inner.metrics.lock().expect("metrics poisoned").clone();
        for (name, value) in snapshot.counters() {
            self.emit(
                EventKind::Metric,
                name,
                None,
                None,
                &[("value", value.into())],
            );
        }
        for (name, value) in snapshot.gauges() {
            self.emit(
                EventKind::Metric,
                name,
                None,
                None,
                &[("value", value.into())],
            );
        }
        for (name, h) in snapshot.histograms() {
            self.emit(
                EventKind::Metric,
                name,
                None,
                None,
                &[
                    ("count", h.count.into()),
                    ("sum", h.sum.into()),
                    ("min", h.min.into()),
                    ("max", h.max.into()),
                ],
            );
        }
    }

    /// Flushes the sink.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.sink.flush();
        }
    }
}

struct SpanState {
    obs: Obs,
    name: &'static str,
    id: u64,
    parent: Option<u64>,
    start: Instant,
}

/// A live span. Dropping it emits the `span_close` event with `elapsed_us`;
/// [`Span::close_with`] attaches measured fields to the close. A span from
/// a disabled [`Obs`] is an allocation-free no-op.
#[must_use = "a span measures the scope it lives in"]
pub struct Span {
    state: Option<SpanState>,
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Span")
            .field("enabled", &self.state.is_some())
            .field("id", &self.id())
            .finish()
    }
}

impl Span {
    /// The span id, `None` for no-op spans.
    pub fn id(&self) -> Option<u64> {
        self.state.as_ref().map(|s| s.id)
    }

    /// Opens a child span.
    pub fn child(&self, name: &'static str) -> Span {
        match &self.state {
            Some(s) => s.obs.span_inner(name, Some(s.id), &[]),
            None => Span { state: None },
        }
    }

    /// Opens a child span with fields on the `span_open` event.
    pub fn child_with(&self, name: &'static str, fields: &[(&'static str, Value)]) -> Span {
        match &self.state {
            Some(s) => s.obs.span_inner(name, Some(s.id), fields),
            None => Span { state: None },
        }
    }

    /// Emits a point event attached to this span.
    pub fn event(&self, name: &'static str, fields: &[(&'static str, Value)]) {
        if let Some(s) = &self.state {
            s.obs.emit(EventKind::Point, name, Some(s.id), None, fields);
        }
    }

    /// Closes the span now, attaching `fields` to the `span_close` event
    /// (in addition to the automatic `elapsed_us`).
    pub fn close_with(mut self, fields: &[(&'static str, Value)]) {
        self.close(fields);
    }

    fn close(&mut self, extra: &[(&'static str, Value)]) {
        let Some(s) = self.state.take() else { return };
        let elapsed_us = s.start.elapsed().as_micros() as u64;
        let mut fields: Vec<(&'static str, Value)> = Vec::with_capacity(extra.len() + 1);
        fields.push(("elapsed_us", elapsed_us.into()));
        fields.extend_from_slice(extra);
        s.obs
            .emit(EventKind::SpanClose, s.name, Some(s.id), s.parent, &fields);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.close(&[]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        let span = obs.span("nothing");
        assert_eq!(span.id(), None);
        span.event("still.nothing", &[]);
        let child = span.child("child");
        child.close_with(&[("x", 1u64.into())]);
        drop(span);
        obs.counter_add("c", 1);
        obs.event("e", &[]);
        obs.flush_metrics();
        obs.flush();
        assert!(obs.metrics().is_empty());
        assert_eq!(format!("{obs:?}"), "Obs { enabled: false }");
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Obs::default().is_enabled());
    }

    #[test]
    fn span_lifecycle_emits_open_and_close() {
        let (obs, sink) = Obs::memory();
        let span = obs.span("outer");
        let outer_id = span.id().expect("enabled");
        let child = span.child("inner");
        let child_id = child.id().expect("enabled");
        child.close_with(&[("n", 3u64.into())]);
        drop(span);

        let events = sink.events();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].kind, EventKind::SpanOpen);
        assert_eq!(events[0].name, "outer");
        assert_eq!(events[1].parent, Some(outer_id), "child knows its parent");
        let inner_close = &events[2];
        assert_eq!(inner_close.kind, EventKind::SpanClose);
        assert_eq!(inner_close.span, Some(child_id));
        assert_eq!(inner_close.field_u64("n"), Some(3));
        assert!(inner_close.field_u64("elapsed_us").is_some());
        assert_eq!(events[3].name, "outer");
        assert_eq!(events[3].kind, EventKind::SpanClose);
    }

    #[test]
    fn seq_numbers_are_gap_free_and_ordered() {
        let (obs, sink) = Obs::memory();
        for _ in 0..5 {
            obs.event("tick", &[]);
        }
        let seqs: Vec<u64> = sink.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn span_events_attach_to_the_span() {
        let (obs, sink) = Obs::memory();
        let span = obs.span("s");
        span.event("p", &[("k", "v".into())]);
        let events = sink.events();
        assert_eq!(events[1].span, span.id());
        assert_eq!(events[1].field_str("k"), Some("v"));
    }

    #[test]
    fn metrics_flush_emits_rows() {
        let (obs, sink) = Obs::memory();
        obs.counter_add("probes", 2);
        obs.counter_add("probes", 1);
        obs.gauge_set("speedup", 2.5);
        obs.histogram_record("conflicts", 7);
        obs.histogram_record("conflicts", 9);
        obs.flush_metrics();
        let metrics: Vec<Event> = sink
            .events()
            .into_iter()
            .filter(|e| e.kind == EventKind::Metric)
            .collect();
        assert_eq!(metrics.len(), 3);
        let probes = metrics.iter().find(|e| e.name == "probes").expect("row");
        assert_eq!(probes.field_u64("value"), Some(3));
        let conflicts = metrics.iter().find(|e| e.name == "conflicts").expect("row");
        assert_eq!(conflicts.field_u64("count"), Some(2));
        assert_eq!(conflicts.field_u64("sum"), Some(16));
        assert_eq!(
            obs.metrics().counter("probes"),
            3,
            "flush keeps the registry"
        );
    }

    #[test]
    fn handles_share_state_across_clones_and_threads() {
        let (obs, sink) = Obs::memory();
        std::thread::scope(|s| {
            for i in 0..4u64 {
                let obs = obs.clone();
                s.spawn(move || {
                    let span = obs.span_with("worker", &[("worker", i.into())]);
                    obs.counter_add("jobs", 1);
                    span.close_with(&[]);
                });
            }
        });
        assert_eq!(obs.metrics().counter("jobs"), 4);
        let events = sink.events();
        assert_eq!(events.len(), 8, "4 opens + 4 closes");
        let mut ids: Vec<u64> = events
            .iter()
            .filter(|e| e.kind == EventKind::SpanOpen)
            .filter_map(|e| e.span)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4, "span ids are unique across threads");
    }

    #[test]
    fn jsonl_trace_roundtrip() {
        let path = std::env::temp_dir().join("etcs_obs_lib_test.jsonl");
        {
            let obs = Obs::jsonl(&path).expect("create");
            let span = obs.span("task.verify");
            span.close_with(&[("feasible", false.into())]);
            obs.flush();
        }
        let text = std::fs::read_to_string(&path).expect("read");
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            let v = json::parse(line).expect("valid JSON");
            assert_eq!(
                v.get("name").and_then(json::Json::as_str),
                Some("task.verify")
            );
        }
        let _ = std::fs::remove_file(&path);
    }
}
