//! The event model: everything a sink ever receives is one [`Event`].

use std::fmt;

use crate::json;

/// What kind of record an [`Event`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A span was opened; `span` is the new span's id.
    SpanOpen,
    /// A span was closed; `span` is the closed span's id and the fields
    /// carry whatever the instrumentation measured over the span's life
    /// (always including `elapsed_us`).
    SpanClose,
    /// A point-in-time event, optionally attached to an enclosing span.
    Point,
    /// A metric snapshot row emitted by
    /// [`Obs::flush_metrics`](crate::Obs::flush_metrics).
    Metric,
}

impl EventKind {
    /// The stable wire name used in the JSONL schema.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::SpanOpen => "span_open",
            EventKind::SpanClose => "span_close",
            EventKind::Point => "event",
            EventKind::Metric => "metric",
        }
    }
}

/// A field value. Conversions exist from the common primitive types so
/// instrumentation sites can write `("conflicts", n.into())`.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned counter-style value.
    U64(u64),
    /// Signed value.
    I64(i64),
    /// Floating-point value.
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Free-form text.
    Str(String),
}

impl Value {
    /// The value as JSON text (strings escaped and quoted).
    pub fn to_json(&self) -> String {
        match self {
            Value::U64(v) => v.to_string(),
            Value::I64(v) => v.to_string(),
            Value::F64(v) => {
                if v.is_finite() {
                    format!("{v}")
                } else {
                    "null".to_owned()
                }
            }
            Value::Bool(v) => v.to_string(),
            Value::Str(s) => json::quote(s),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s}"),
            other => write!(f, "{}", other.to_json()),
        }
    }
}

/// One observability record, as delivered to a [`Sink`](crate::Sink).
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Global sequence number (0-based, gap-free per [`Obs`](crate::Obs)).
    pub seq: u64,
    /// Microseconds since the owning `Obs` handle was created.
    pub t_us: u64,
    /// Record kind.
    pub kind: EventKind,
    /// Span/event/metric name (dot-separated, e.g. `task.optimize`).
    pub name: &'static str,
    /// Owning span id: the span's own id for open/close records, the
    /// enclosing span for point events emitted through a span handle.
    pub span: Option<u64>,
    /// Parent span id, when the span was opened as a child.
    pub parent: Option<u64>,
    /// Structured payload.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// Looks a field up by key.
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// A field interpreted as `u64` (also accepts non-negative `I64`).
    pub fn field_u64(&self, key: &str) -> Option<u64> {
        match self.field(key)? {
            Value::U64(v) => Some(*v),
            Value::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// A field interpreted as text.
    pub fn field_str(&self, key: &str) -> Option<&str> {
        match self.field(key)? {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Renders the event as one JSON object (no trailing newline) in the
    /// stable JSONL schema:
    ///
    /// ```json
    /// {"seq":3,"t_us":120,"kind":"span_close","name":"probe",
    ///  "span":2,"parent":1,"fields":{"deadline":7,"sat":true}}
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"seq\":");
        out.push_str(&self.seq.to_string());
        out.push_str(",\"t_us\":");
        out.push_str(&self.t_us.to_string());
        out.push_str(",\"kind\":\"");
        out.push_str(self.kind.as_str());
        out.push_str("\",\"name\":");
        out.push_str(&json::quote(self.name));
        out.push_str(",\"span\":");
        match self.span {
            Some(id) => out.push_str(&id.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(",\"parent\":");
        match self.parent {
            Some(id) => out.push_str(&id.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(",\"fields\":{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json::quote(k));
            out.push(':');
            out.push_str(&v.to_json());
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Event {
        Event {
            seq: 3,
            t_us: 120,
            kind: EventKind::SpanClose,
            name: "probe",
            span: Some(2),
            parent: Some(1),
            fields: vec![("deadline", 7u64.into()), ("sat", true.into())],
        }
    }

    #[test]
    fn json_schema_is_stable() {
        assert_eq!(
            sample().to_json(),
            "{\"seq\":3,\"t_us\":120,\"kind\":\"span_close\",\"name\":\"probe\",\
             \"span\":2,\"parent\":1,\"fields\":{\"deadline\":7,\"sat\":true}}"
        );
    }

    #[test]
    fn json_roundtrips_through_the_parser() {
        let parsed = json::parse(&sample().to_json()).expect("valid JSON");
        assert_eq!(
            parsed.get("kind").and_then(json::Json::as_str),
            Some("span_close")
        );
        let fields = parsed.get("fields").expect("object");
        assert_eq!(
            fields.get("deadline").and_then(json::Json::as_f64),
            Some(7.0)
        );
    }

    #[test]
    fn field_lookup() {
        let e = sample();
        assert_eq!(e.field_u64("deadline"), Some(7));
        assert_eq!(e.field_u64("missing"), None);
        assert_eq!(e.field("sat"), Some(&Value::Bool(true)));
    }

    #[test]
    fn value_conversions_and_rendering() {
        assert_eq!(Value::from(3usize).to_json(), "3");
        assert_eq!(Value::from(-2i64).to_json(), "-2");
        assert_eq!(Value::from(true).to_json(), "true");
        assert_eq!(Value::from("a\"b").to_json(), "\"a\\\"b\"");
        assert_eq!(Value::from(f64::NAN).to_json(), "null");
        assert_eq!(format!("{}", Value::from("plain")), "plain");
    }

    #[test]
    fn kind_wire_names() {
        assert_eq!(EventKind::SpanOpen.as_str(), "span_open");
        assert_eq!(EventKind::Point.as_str(), "event");
        assert_eq!(EventKind::Metric.as_str(), "metric");
    }
}
