//! Named counters, gauges and histograms.
//!
//! The registry is plain data — the [`Obs`](crate::Obs) handle wraps one in
//! a mutex and exposes lock-free-when-disabled update helpers, but the
//! registry itself is also usable standalone (e.g. to aggregate per-worker
//! snapshots).

use std::collections::BTreeMap;

/// A streaming histogram: running count/sum/min/max plus power-of-two
/// buckets (`bucket[i]` counts samples in `[2^i, 2^{i+1})`, with 0 in
/// bucket 0). Enough to read off medians-by-decade and tails without
/// storing samples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    buckets: [u64; 64],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; 64],
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        let bucket = if value == 0 {
            0
        } else {
            63 - value.leading_zeros() as usize
        };
        self.buckets[bucket] += 1;
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Samples in `[2^i, 2^{i+1})` (index 0 also counts zero samples).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }
}

/// A registry of named metrics. Names are `&'static str` by design: every
/// metric the workspace emits is declared at an instrumentation site, and
/// static names keep the hot-path update allocation-free.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to a counter (creating it at 0).
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Reads a counter (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets a gauge to an absolute value.
    pub fn gauge_set(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Reads a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Records a sample into a histogram (creating it empty).
    pub fn histogram_record(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().record(value);
    }

    /// Reads a histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Iterates gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(k, v)| (*k, *v))
    }

    /// Iterates histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(k, v)| (*k, v))
    }

    /// Folds another registry into this one (counters add, gauges take the
    /// other's value, histograms merge).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, v) in &other.counters {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            self.gauges.insert(name, *v);
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name).or_default().merge(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::new();
        assert_eq!(m.counter("probes"), 0);
        m.counter_add("probes", 2);
        m.counter_add("probes", 3);
        assert_eq!(m.counter("probes"), 5);
        assert_eq!(m.counters().collect::<Vec<_>>(), vec![("probes", 5)]);
    }

    #[test]
    fn gauges_overwrite() {
        let mut m = MetricsRegistry::new();
        assert_eq!(m.gauge("load"), None);
        m.gauge_set("load", 0.5);
        m.gauge_set("load", 0.75);
        assert_eq!(m.gauge("load"), Some(0.75));
    }

    #[test]
    fn histogram_tracks_shape() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 1024] {
            h.record(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1030);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1024);
        assert!((h.mean() - 206.0).abs() < 1e-9);
        assert_eq!(h.bucket(0), 2, "0 and 1 land in bucket 0");
        assert_eq!(h.bucket(1), 2, "2 and 3 land in bucket 1");
        assert_eq!(h.bucket(10), 1, "1024 lands in bucket 10");
    }

    #[test]
    fn histogram_merge_is_fieldwise() {
        let mut a = Histogram::default();
        a.record(4);
        let mut b = Histogram::default();
        b.record(1);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.min, 1);
        assert_eq!(a.max, 100);
        let mut empty = Histogram::default();
        empty.merge(&a);
        assert_eq!(empty, a);
        let snapshot = a.clone();
        a.merge(&Histogram::default());
        assert_eq!(a, snapshot, "merging empty is a no-op");
    }

    #[test]
    fn registry_merge() {
        let mut a = MetricsRegistry::new();
        a.counter_add("probes", 1);
        a.histogram_record("conflicts", 8);
        let mut b = MetricsRegistry::new();
        b.counter_add("probes", 2);
        b.gauge_set("speedup", 2.0);
        b.histogram_record("conflicts", 16);
        a.merge(&b);
        assert_eq!(a.counter("probes"), 3);
        assert_eq!(a.gauge("speedup"), Some(2.0));
        assert_eq!(a.histogram("conflicts").expect("present").count, 2);
        assert!(!a.is_empty());
    }
}
