//! Pluggable event sinks: null (drop everything), in-memory (tests), and
//! JSONL file (replayable trace artifacts).

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::event::Event;

/// Receiver for observability events.
///
/// Sinks are shared across worker threads, so they take `&self` and must be
/// `Send + Sync`; interior mutability is the sink's concern. Implementations
/// must tolerate events arriving from several threads interleaved (the
/// `seq` numbers are globally ordered, arrival order need not be).
pub trait Sink: Send + Sync {
    /// Delivers one event.
    fn record(&self, event: &Event);

    /// Forces buffered output out (no-op by default).
    fn flush(&self) {}
}

/// Drops every event. [`Obs::disabled`](crate::Obs::disabled) never calls a
/// sink at all; `NullSink` exists for plumbing that requires a sink value.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&self, _event: &Event) {}
}

/// Collects events in memory; the test-side handle is a cheap clone.
#[derive(Clone, Debug, Default)]
pub struct MemorySink {
    events: Arc<Mutex<Vec<Event>>>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of every event recorded so far, in `seq` order.
    pub fn events(&self) -> Vec<Event> {
        let mut events = self.events.lock().expect("sink poisoned").clone();
        events.sort_by_key(|e| e.seq);
        events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("sink poisoned").len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of events with the given name.
    pub fn named(&self, name: &str) -> Vec<Event> {
        self.events()
            .into_iter()
            .filter(|e| e.name == name)
            .collect()
    }
}

impl Sink for MemorySink {
    fn record(&self, event: &Event) {
        self.events
            .lock()
            .expect("sink poisoned")
            .push(event.clone());
    }
}

/// Writes each event as one JSON line. Every record is flushed through to
/// the file immediately: traces are usually wanted precisely when a run
/// dies, so a crash must not truncate the artifact.
#[derive(Debug)]
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the trace file at `path`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }
}

impl Sink for JsonlSink {
    fn record(&self, event: &Event) {
        let mut w = self.writer.lock().expect("sink poisoned");
        let _ = writeln!(w, "{}", event.to_json());
        let _ = w.flush();
    }

    fn flush(&self) {
        let _ = self.writer.lock().expect("sink poisoned").flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(seq: u64, name: &'static str) -> Event {
        Event {
            seq,
            t_us: seq * 10,
            kind: EventKind::Point,
            name,
            span: None,
            parent: None,
            fields: vec![("k", seq.into())],
        }
    }

    #[test]
    fn null_sink_accepts_everything() {
        let s = NullSink;
        s.record(&ev(0, "x"));
        s.flush();
    }

    #[test]
    fn memory_sink_orders_by_seq() {
        let s = MemorySink::new();
        assert!(s.is_empty());
        s.record(&ev(1, "b"));
        s.record(&ev(0, "a"));
        let events = s.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "a");
        assert_eq!(s.named("b").len(), 1);
        let clone = s.clone();
        clone.record(&ev(2, "c"));
        assert_eq!(s.len(), 3, "clones share storage");
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path = std::env::temp_dir().join("etcs_obs_sink_test.jsonl");
        let s = JsonlSink::create(&path).expect("create");
        s.record(&ev(0, "first"));
        s.record(&ev(1, "second"));
        s.flush();
        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v = crate::json::parse(line).expect("each line is valid JSON");
            assert!(v.get("name").is_some());
        }
        let _ = std::fs::remove_file(&path);
    }
}
