//! Minimal JSON support: string quoting for the writer side and a small
//! recursive-descent parser used by tests and the CI smoke step to prove
//! that emitted trace lines are well-formed.
//!
//! This is intentionally tiny (objects keep insertion order, numbers are
//! `f64`) — it exists so the workspace can validate its own JSONL output
//! without an external dependency, not as a general JSON library.

use std::fmt;

/// Escapes and quotes `s` as a JSON string literal.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as text, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Error from [`parse`]: byte offset and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed for our traces;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so it's valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quote_escapes_specials() {
        assert_eq!(quote("plain"), "\"plain\"");
        assert_eq!(quote("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(quote("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
        assert_eq!(quote("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" -2.5e1 ").unwrap(), Json::Num(-25.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse("{\"a\": [1, {\"b\": false}], \"c\": null}").unwrap();
        let arr = v.get("a").expect("member");
        match arr {
            Json::Arr(items) => {
                assert_eq!(items[0], Json::Num(1.0));
                assert_eq!(items[1].get("b"), Some(&Json::Bool(false)));
            }
            other => panic!("expected array, got {other:?}"),
        }
        assert_eq!(v.get("c"), Some(&Json::Null));
    }

    #[test]
    fn roundtrips_quoted_strings() {
        for s in ["", "plain", "a\"b", "tab\there", "nl\nthere", "uni→code"] {
            match parse(&quote(s)).unwrap() {
                Json::Str(back) => assert_eq!(back, s),
                other => panic!("expected string, got {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "\"open", "{\"a\" 1}", "12x", "true false"] {
            assert!(parse(bad).is_err(), "{bad:?} should be rejected");
        }
        let err = parse("nope").unwrap_err();
        assert!(err.to_string().contains("byte"));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("{}").unwrap(), Json::Obj(vec![]));
        assert_eq!(parse("[]").unwrap(), Json::Arr(vec![]));
    }
}
