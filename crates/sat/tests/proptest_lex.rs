//! Property-based test: lexicographic MaxSAT against brute-force
//! enumeration on small random instances.

use etcs_sat::{maxsat, CnfSink, Formula, Objective, Solver, Strategy as OptStrategy, Var};
use proptest::prelude::*;

fn cnf_strategy() -> impl Strategy<Value = (usize, Vec<Vec<i32>>)> {
    (3..=6usize).prop_flat_map(|nv| {
        let clause = proptest::collection::vec(
            (1..=nv as i32).prop_flat_map(|v| prop_oneof![Just(v), Just(-v)]),
            1..=3,
        );
        proptest::collection::vec(clause, 1..=12).prop_map(move |cs| (nv, cs))
    })
}

fn build(nv: usize, clauses: &[Vec<i32>]) -> (Solver, Vec<Var>) {
    let mut s = Solver::new();
    let vars: Vec<Var> = (0..nv).map(|_| CnfSink::new_var(&mut s)).collect();
    for c in clauses {
        let lits: Vec<_> = c
            .iter()
            .map(|&x| vars[(x.unsigned_abs() - 1) as usize].lit(x > 0))
            .collect();
        s.add_clause(lits);
    }
    (s, vars)
}

/// Brute-force lexicographic optimum of (min #true in `a`, min #true in `b`)
/// subject to the clauses; `None` if unsatisfiable.
fn brute_lex(
    nv: usize,
    clauses: &[Vec<i32>],
    a: &[usize],
    b: &[usize],
) -> Option<(u32, u32)> {
    (0..(1u64 << nv))
        .filter(|&mask| {
            clauses.iter().all(|c| {
                c.iter().any(|&x| {
                    let bit = mask & (1 << (x.unsigned_abs() - 1)) != 0;
                    if x > 0 {
                        bit
                    } else {
                        !bit
                    }
                })
            })
        })
        .map(|mask| {
            let count = |set: &[usize]| set.iter().filter(|&&v| mask & (1 << v) != 0).count() as u32;
            (count(a), count(b))
        })
        .min()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lexicographic_matches_brute_force(
        (nv, clauses) in cnf_strategy(),
        sel in proptest::collection::vec(0usize..3, 6),
    ) {
        // Partition variables into objective A (sel = 0), objective B
        // (sel = 1), free (sel = 2).
        let a_vars: Vec<usize> = (0..nv).filter(|&v| sel[v] == 0).collect();
        let b_vars: Vec<usize> = (0..nv).filter(|&v| sel[v] == 1).collect();
        let expected = brute_lex(nv, &clauses, &a_vars, &b_vars);

        let (mut s, vars) = build(nv, &clauses);
        let obj_a = Objective::count_of(a_vars.iter().map(|&v| vars[v].positive()));
        let obj_b = Objective::count_of(b_vars.iter().map(|&v| vars[v].positive()));
        let result = maxsat::minimize_lex_full(
            &mut s,
            &[obj_a.clone(), obj_b.clone()],
            OptStrategy::LinearSatUnsat,
        )
        .expect("no budget configured");
        match (result, expected) {
            (Some(r), Some((ea, eb))) => {
                prop_assert_eq!((r.costs[0] as u32, r.costs[1] as u32), (ea, eb));
                // The model achieves the reported costs.
                prop_assert_eq!(obj_a.eval(&r.model) as u32, ea);
                prop_assert_eq!(obj_b.eval(&r.model) as u32, eb);
            }
            (None, None) => {}
            (got, want) => prop_assert!(
                false,
                "solver and brute force disagree: got {:?}, want {:?}",
                got.map(|r| r.costs.clone()),
                want
            ),
        }
    }
}
