//! Property-based test: lexicographic MaxSAT against brute-force
//! enumeration on small random instances (deterministic `etcs-testkit`
//! seeds).

use etcs_sat::{maxsat, CnfSink, Objective, Solver, Strategy as OptStrategy, Var};
use etcs_testkit::{cases, Rng};

fn random_cnf(rng: &mut Rng) -> (usize, Vec<Vec<i32>>) {
    let nv = rng.range(3, 7);
    let nc = rng.range(1, 13);
    let clauses = rng.vec(nc, |rng| {
        let len = rng.range(1, 4);
        rng.vec(len, |rng| {
            let v = rng.range(1, nv + 1) as i32;
            if rng.bool() {
                v
            } else {
                -v
            }
        })
    });
    (nv, clauses)
}

fn build(nv: usize, clauses: &[Vec<i32>]) -> (Solver, Vec<Var>) {
    let mut s = Solver::new();
    let vars: Vec<Var> = (0..nv).map(|_| CnfSink::new_var(&mut s)).collect();
    for c in clauses {
        let lits: Vec<_> = c
            .iter()
            .map(|&x| vars[(x.unsigned_abs() - 1) as usize].lit(x > 0))
            .collect();
        s.add_clause(lits);
    }
    (s, vars)
}

/// Brute-force lexicographic optimum of (min #true in `a`, min #true in `b`)
/// subject to the clauses; `None` if unsatisfiable.
fn brute_lex(nv: usize, clauses: &[Vec<i32>], a: &[usize], b: &[usize]) -> Option<(u32, u32)> {
    (0..(1u64 << nv))
        .filter(|&mask| {
            clauses.iter().all(|c| {
                c.iter().any(|&x| {
                    let bit = mask & (1 << (x.unsigned_abs() - 1)) != 0;
                    if x > 0 {
                        bit
                    } else {
                        !bit
                    }
                })
            })
        })
        .map(|mask| {
            let count =
                |set: &[usize]| set.iter().filter(|&&v| mask & (1 << v) != 0).count() as u32;
            (count(a), count(b))
        })
        .min()
}

#[test]
fn lexicographic_matches_brute_force() {
    cases(128, |rng| {
        let (nv, clauses) = random_cnf(rng);
        // Partition variables into objective A (sel = 0), objective B
        // (sel = 1), free (sel = 2).
        let sel = rng.vec(6, |rng| rng.below(3));
        let a_vars: Vec<usize> = (0..nv).filter(|&v| sel[v] == 0).collect();
        let b_vars: Vec<usize> = (0..nv).filter(|&v| sel[v] == 1).collect();
        let expected = brute_lex(nv, &clauses, &a_vars, &b_vars);

        let (mut s, vars) = build(nv, &clauses);
        let obj_a = Objective::count_of(a_vars.iter().map(|&v| vars[v].positive()));
        let obj_b = Objective::count_of(b_vars.iter().map(|&v| vars[v].positive()));
        let result = maxsat::minimize_lex_full(
            &mut s,
            &[obj_a.clone(), obj_b.clone()],
            OptStrategy::LinearSatUnsat,
        )
        .expect("no budget configured");
        match (result, expected) {
            (Some(r), Some((ea, eb))) => {
                assert_eq!((r.costs[0] as u32, r.costs[1] as u32), (ea, eb));
                // The model achieves the reported costs.
                assert_eq!(obj_a.eval(&r.model) as u32, ea);
                assert_eq!(obj_b.eval(&r.model) as u32, eb);
            }
            (None, None) => {}
            (got, want) => panic!(
                "solver and brute force disagree: got {:?}, want {:?}",
                got.map(|r| r.costs.clone()),
                want
            ),
        }
    });
}
