//! End-to-end DRAT certification: proofs emitted by the instrumented solver
//! must be accepted by the independent checker, corrupted proofs must be
//! rejected, and random UNSAT instances must certify across the solver's
//! full feature set (restarts, database reduction, simplification,
//! assumptions).

use etcs_sat::proof::{check_drat, DratProof, ProofError, ProofStep};
use etcs_sat::{CnfSink, Formula, SatResult, Solver, Var};
use etcs_testkit::cases;
use std::sync::{Arc, Mutex};

/// Solves `f` with proof logging; returns the result and the proof.
fn solve_logged(f: &Formula) -> (SatResult, DratProof) {
    let proof = Arc::new(Mutex::new(DratProof::new()));
    let mut s = Solver::new();
    s.set_proof_sink(Box::new(Arc::clone(&proof)));
    f.load_into(&mut s);
    let result = s.solve();
    drop(s);
    let proof = Arc::try_unwrap(proof)
        .expect("solver handle dropped")
        .into_inner()
        .expect("proof lock");
    (result, proof)
}

/// Pigeonhole principle PHP(n+1, n): always UNSAT, exercises real search.
fn pigeonhole(holes: usize) -> Formula {
    let pigeons = holes + 1;
    let mut f = Formula::new();
    let v: Vec<Vec<Var>> = (0..pigeons)
        .map(|_| (0..holes).map(|_| f.new_var()).collect())
        .collect();
    for p in &v {
        let lits: Vec<_> = p.iter().map(|x| x.positive()).collect();
        f.add_clause_from(&lits);
    }
    for p1 in 0..pigeons {
        for p2 in (p1 + 1)..pigeons {
            for (x1, x2) in v[p1].iter().zip(&v[p2]) {
                f.add_clause_from(&[x1.negative(), x2.negative()]);
            }
        }
    }
    f
}

#[test]
fn pigeonhole_proof_certifies() {
    for holes in 2..=6 {
        let f = pigeonhole(holes);
        let (result, proof) = solve_logged(&f);
        assert!(
            result.is_unsat(),
            "PHP({}, {holes}) must be UNSAT",
            holes + 1
        );
        assert!(!proof.is_empty(), "an UNSAT run must emit lemmas");
        let outcome = check_drat(f.clauses(), &proof, &[])
            .unwrap_or_else(|e| panic!("PHP({holes}) proof rejected: {e}"));
        assert!(outcome.checked_lemmas >= 1);
    }
}

#[test]
fn corrupting_a_needed_lemma_is_detected() {
    let f = pigeonhole(4);
    let (result, proof) = solve_logged(&f);
    assert!(result.is_unsat());
    check_drat(f.clauses(), &proof, &[]).expect("pristine proof is valid");

    // Flip one literal in every needed Add step, one at a time; the checker
    // must reject each corruption (either a lemma stops being RUP or the
    // final conflict disappears).
    let mut corruptions = 0;
    for i in 0..proof.len() {
        let ProofStep::Add(lits) = &proof.steps()[i] else {
            continue;
        };
        if lits.is_empty() {
            continue;
        }
        let mut bad = proof.clone();
        let ProofStep::Add(lits) = &mut bad.steps_mut()[i] else {
            unreachable!()
        };
        lits[0] = !lits[0];
        if check_drat(f.clauses(), &bad, &[]).is_err() {
            corruptions += 1;
        }
    }
    assert!(
        corruptions > 0,
        "at least one single-literal corruption must be caught"
    );
}

#[test]
fn truncated_proof_is_rejected() {
    let f = pigeonhole(3);
    let (result, proof) = solve_logged(&f);
    assert!(result.is_unsat());
    // Without any lemmas the axioms alone do not refute by unit propagation
    // — PHP has no unit clauses — so the empty certificate must be rejected.
    assert_eq!(
        check_drat(f.clauses(), &DratProof::new(), &[]),
        Err(ProofError::TargetNotRup)
    );
    // The shortest accepted prefix is non-empty: some derivation work is
    // genuinely required (dropping the tail may still certify, because the
    // last learnt unit often propagates to the conflict on its own).
    let mut shortest = None;
    for k in 0..=proof.len() {
        let mut prefix = DratProof::new();
        for s in &proof.steps()[..k] {
            prefix.push(s.clone());
        }
        if check_drat(f.clauses(), &prefix, &[]).is_ok() {
            shortest = Some(k);
            break;
        }
    }
    let k = shortest.expect("the full proof certifies");
    assert!(k > 0, "an empty prefix must never certify UNSAT");
}

#[test]
fn assumption_core_certifies_via_negated_core_lemma() {
    // a→b, b→c, plus a blocked pair; UNSAT only under assumptions.
    let mut f = Formula::new();
    let a = f.new_var().positive();
    let b = f.new_var().positive();
    let c = f.new_var().positive();
    f.implies(a, b);
    f.implies(b, c);

    let proof = Arc::new(Mutex::new(DratProof::new()));
    let mut s = Solver::new();
    s.set_proof_sink(Box::new(Arc::clone(&proof)));
    f.load_into(&mut s);
    match s.solve_with(&[a, !c]) {
        SatResult::Unsat { core } => {
            assert!(!core.is_empty());
            let target: Vec<_> = core.iter().map(|&l| !l).collect();
            check_drat(f.clauses(), &proof.lock().expect("proof lock"), &target)
                .expect("negated-core lemma certifies");
        }
        other => panic!("expected unsat under assumptions: {other:?}"),
    }
    // The solver stays usable and satisfiable without assumptions.
    assert!(s.solve().is_sat());
}

#[test]
fn random_unsat_instances_certify() {
    cases(128, |rng| {
        let nv = rng.range(3, 9);
        let nc = rng.range(8, 40);
        let mut f = Formula::new();
        let vars: Vec<Var> = (0..nv).map(|_| f.new_var()).collect();
        for _ in 0..nc {
            let len = rng.range(1, 4);
            let lits: Vec<_> = (0..len)
                .map(|_| vars[rng.below(nv)].lit(rng.bool()))
                .collect();
            f.add_clause_from(&lits);
        }
        let (result, proof) = solve_logged(&f);
        match result {
            SatResult::Unsat { .. } => {
                check_drat(f.clauses(), &proof, &[])
                    .unwrap_or_else(|e| panic!("proof rejected: {e}\n{}", proof.to_drat_text()));
            }
            SatResult::Sat(m) => assert!(f.eval(&m)),
            SatResult::Unknown => panic!("no budget set"),
        }
    });
}

#[test]
fn random_assumption_cores_certify() {
    cases(128, |rng| {
        let nv = rng.range(3, 8);
        let nc = rng.range(5, 25);
        let mut f = Formula::new();
        let vars: Vec<Var> = (0..nv).map(|_| f.new_var()).collect();
        for _ in 0..nc {
            let len = rng.range(1, 4);
            let lits: Vec<_> = (0..len)
                .map(|_| vars[rng.below(nv)].lit(rng.bool()))
                .collect();
            f.add_clause_from(&lits);
        }
        let assumptions: Vec<_> = (0..rng.range(1, 5))
            .map(|_| vars[rng.below(nv)].lit(rng.bool()))
            .collect();
        let proof = Arc::new(Mutex::new(DratProof::new()));
        let mut s = Solver::new();
        s.set_proof_sink(Box::new(Arc::clone(&proof)));
        f.load_into(&mut s);
        if let SatResult::Unsat { core } = s.solve_with(&assumptions) {
            let target: Vec<_> = core.iter().map(|&l| !l).collect();
            check_drat(f.clauses(), &proof.lock().expect("proof lock"), &target).unwrap_or_else(
                |e| {
                    panic!(
                        "core certification failed: {e}\ncore: {core:?}\n{}",
                        proof.lock().expect("proof lock").to_drat_text()
                    )
                },
            );
        }
    });
}

#[test]
fn incremental_runs_share_one_proof() {
    // Several solve_with calls against one solver append to one proof; the
    // final refutation must still check against the original axioms.
    let f = pigeonhole(3);
    let proof = Arc::new(Mutex::new(DratProof::new()));
    let mut s = Solver::new();
    s.set_proof_sink(Box::new(Arc::clone(&proof)));
    f.load_into(&mut s);
    let first = Var::from_index(0).positive();
    let _ = s.solve_with(&[first]);
    let _ = s.solve_with(&[!first]);
    assert!(s.solve().is_unsat());
    check_drat(f.clauses(), &proof.lock().expect("proof lock"), &[])
        .expect("cumulative proof certifies");
}

#[test]
fn sat_runs_emit_checkable_noise_only() {
    // On satisfiable formulas the proof contains only sound lemmas — the
    // checker accepts any *satisfiable* target the formula implies; here we
    // simply verify no empty clause was emitted.
    let mut f = Formula::new();
    let a = f.new_var().positive();
    let b = f.new_var().positive();
    f.add_clause_from(&[a, b]);
    let (result, proof) = solve_logged(&f);
    assert!(result.is_sat());
    assert!(proof
        .steps()
        .iter()
        .all(|s| !matches!(s, ProofStep::Add(l) if l.is_empty())));
}
