//! Regression and stress tests for the CDCL solver on structured instance
//! families with known answers.

#![allow(clippy::needless_range_loop)]

use etcs_sat::{
    card, maxsat, parse_dimacs, CnfSink, Formula, Lit, Objective, SatResult, Solver, Strategy,
    Totalizer, Var,
};

fn vars(s: &mut Solver, n: usize) -> Vec<Lit> {
    (0..n).map(|_| CnfSink::new_var(s).positive()).collect()
}

/// XOR of two literals as CNF: a ⊕ b = c.
fn xor_gate(s: &mut Solver, a: Lit, b: Lit, c: Lit) {
    s.add_clause([!a, !b, !c]);
    s.add_clause([a, b, !c]);
    s.add_clause([a, !b, c]);
    s.add_clause([!a, b, c]);
}

#[test]
fn xor_chain_parity_sat_and_unsat() {
    // x0 ⊕ x1 = y0, y0 ⊕ x2 = y1, …; force final parity.
    for (force, expect_sat) in [(true, true), (false, true)] {
        let mut s = Solver::new();
        let xs = vars(&mut s, 12);
        let mut acc = xs[0];
        for &x in &xs[1..] {
            let y = CnfSink::new_var(&mut s).positive();
            xor_gate(&mut s, acc, x, y);
            acc = y;
        }
        if force {
            s.assert_true(acc);
        } else {
            s.assert_false(acc);
        }
        assert_eq!(s.solve().is_sat(), expect_sat);
    }
}

#[test]
fn xor_chain_with_contradictory_parities_is_unsat() {
    // Two parity chains over the same variables forced to differ.
    let mut s = Solver::new();
    let xs = vars(&mut s, 10);
    let build_chain = |s: &mut Solver| {
        let mut acc = xs[0];
        for &x in &xs[1..] {
            let y = CnfSink::new_var(s).positive();
            xor_gate(s, acc, x, y);
            acc = y;
        }
        acc
    };
    let p1 = build_chain(&mut s);
    let p2 = build_chain(&mut s);
    s.assert_true(p1);
    s.assert_false(p2);
    assert!(s.solve().is_unsat());
}

#[test]
fn graph_coloring_cycle() {
    // An odd cycle is not 2-colourable but is 3-colourable.
    fn color_cycle(n: usize, k: usize) -> bool {
        let mut s = Solver::new();
        let c: Vec<Vec<Lit>> = (0..n).map(|_| vars(&mut s, k)).collect();
        for node in &c {
            s.add_clause(node.iter().copied());
            s.at_most_one_pairwise(node);
        }
        for i in 0..n {
            let j = (i + 1) % n;
            #[allow(clippy::needless_range_loop)]
            for col in 0..k {
                s.add_clause([!c[i][col], !c[j][col]]);
            }
        }
        s.solve().is_sat()
    }
    assert!(!color_cycle(7, 2));
    assert!(color_cycle(7, 3));
    assert!(color_cycle(8, 2));
}

#[test]
fn long_implication_chain_with_conflict_at_the_end() {
    let mut s = Solver::new();
    let xs = vars(&mut s, 2000);
    for w in xs.windows(2) {
        s.implies(w[0], w[1]);
    }
    s.assert_true(xs[0]);
    s.assert_false(*xs.last().expect("non-empty"));
    assert!(s.solve().is_unsat());
}

#[test]
fn duplicate_and_subsumed_clauses_are_harmless() {
    let mut s = Solver::new();
    let xs = vars(&mut s, 6);
    for _ in 0..50 {
        s.add_clause([xs[0], xs[1], xs[2]]);
        s.add_clause([xs[0], xs[1]]);
        s.add_clause([!xs[3], xs[4], !xs[5], xs[4]]);
    }
    assert!(s.solve().is_sat());
}

#[test]
fn alternating_sat_unsat_assumption_queries() {
    // Stress incremental state: flip between satisfiable and unsatisfiable
    // assumption sets many times on the same solver.
    let mut s = Solver::new();
    let xs = vars(&mut s, 20);
    for w in xs.windows(2) {
        s.add_clause([!w[0], w[1]]);
    }
    for round in 0..50 {
        let sat = s.solve_with(&[xs[0]]);
        assert!(sat.is_sat(), "round {round}");
        let unsat = s.solve_with(&[xs[0], !xs[19]]);
        assert!(unsat.is_unsat(), "round {round}");
    }
}

#[test]
fn exactly_k_totalizer_both_bounds() {
    for n in 1..=8usize {
        for k in 0..=n {
            let mut s = Solver::new();
            let xs = vars(&mut s, n);
            let t = Totalizer::build(&mut s, xs.clone());
            if let Some(b) = t.at_most(k) {
                s.assert_true(b);
            }
            if k > 0 {
                if let Some(b) = t.at_least(k) {
                    s.assert_true(b);
                }
            }
            match s.solve() {
                SatResult::Sat(m) => {
                    assert_eq!(m.count_true(&xs), k, "n={n} k={k}");
                }
                other => panic!("exactly-{k} of {n} must be satisfiable: {other:?}"),
            }
        }
    }
}

#[test]
fn sequential_encoding_composes_with_assumptions() {
    let mut s = Solver::new();
    let xs = vars(&mut s, 10);
    card::at_most_k_sequential(&mut s, &xs, 3);
    // Assume 3 specific literals true: satisfiable; a 4th: unsatisfiable.
    assert!(s.solve_with(&xs[0..3]).is_sat());
    assert!(s.solve_with(&xs[0..4]).is_unsat());
    assert!(s.solve().is_sat(), "solver remains usable");
}

#[test]
fn weighted_maxsat_prefers_many_cheap_violations() {
    // One weight-5 literal vs five weight-1 literals; hard clause forces
    // either the expensive one or all cheap ones.
    let mut s = Solver::new();
    let expensive = CnfSink::new_var(&mut s).positive();
    let cheap = vars(&mut s, 5);
    // expensive ∨ (all cheap): CNF as (expensive ∨ c_i) for each i.
    for &c in &cheap {
        s.add_clause([expensive, c]);
    }
    let mut terms = vec![(expensive, 5u64)];
    terms.extend(cheap.iter().map(|&c| (c, 1u64)));
    let obj = Objective::new(terms);
    let outcome = maxsat::minimize(&mut s, &obj, &[], Strategy::LinearSatUnsat);
    let opt = outcome.optimal().expect("satisfiable");
    assert_eq!(opt.cost, 5, "both options cost 5; optimum is 5");
}

#[test]
fn dimacs_replay_of_generated_instance() {
    // Build a formula, write DIMACS, re-parse, solve both: same verdict.
    let mut f = Formula::new();
    let xs: Vec<Lit> = (0..15).map(|_| f.new_var().positive()).collect();
    for w in xs.windows(3) {
        f.add_clause_from(&[w[0], !w[1], w[2]]);
        f.add_clause_from(&[!w[0], w[1]]);
    }
    let text = etcs_sat::write_dimacs(&f);
    let g = parse_dimacs(&text).expect("roundtrip");
    let mut s1 = Solver::new();
    f.load_into(&mut s1);
    let mut s2 = Solver::new();
    g.load_into(&mut s2);
    assert_eq!(s1.solve().is_sat(), s2.solve().is_sat());
}

#[test]
fn hundreds_of_variables_unit_cascade() {
    // A large instance solved purely by propagation: no decisions needed.
    let mut s = Solver::new();
    let xs = vars(&mut s, 5000);
    s.assert_true(xs[0]);
    for w in xs.windows(2) {
        s.implies(w[0], w[1]);
    }
    match s.solve() {
        SatResult::Sat(m) => {
            assert!(xs.iter().all(|&x| m.lit_is_true(x)));
        }
        other => panic!("expected sat: {other:?}"),
    }
    assert_eq!(s.stats().conflicts, 0, "pure propagation, no search");
}

#[test]
fn php_unsat_cores_are_accurate_under_selectors() {
    // Pigeonhole with per-pigeon selectors: the core must cover all
    // pigeons (removing any one makes it satisfiable).
    let n = 4usize; // 4 pigeons, 3 holes
    let mut s = Solver::new();
    let p: Vec<Vec<Lit>> = (0..n).map(|_| vars(&mut s, n - 1)).collect();
    let selectors: Vec<Lit> = (0..n)
        .map(|_| CnfSink::new_var(&mut s).positive())
        .collect();
    for (row, &sel) in p.iter().zip(&selectors) {
        let mut clause = vec![!sel];
        clause.extend(row.iter().copied());
        s.add_clause(clause);
    }
    for h in 0..n - 1 {
        for i in 0..n {
            for j in (i + 1)..n {
                s.add_clause([!p[i][h], !p[j][h]]);
            }
        }
    }
    match s.solve_with(&selectors) {
        SatResult::Unsat { core } => {
            assert_eq!(core.len(), n, "every pigeon participates");
        }
        other => panic!("expected unsat: {other:?}"),
    }
    // Any n-1 pigeons fit.
    assert!(s.solve_with(&selectors[1..]).is_sat());
}

#[test]
fn assumption_literals_do_not_leak_across_calls() {
    // The `solve_with` assumption-scope contract: assumptions hold for one
    // call only. They must not constrain the next call's model, appear in
    // the next call's unsat core, or remain asserted on the trail.
    let mut s = Solver::new();
    let x = CnfSink::new_var(&mut s).positive();

    // 1. Models: a free variable can be forced either way in consecutive
    //    calls — the earlier assumption does not persist as a constraint.
    match s.solve_with(&[x]) {
        SatResult::Sat(m) => assert!(m.lit_is_true(x)),
        other => panic!("expected sat: {other:?}"),
    }
    match s.solve_with(&[!x]) {
        SatResult::Sat(m) => assert!(!m.lit_is_true(x), "previous [x] leaked"),
        other => panic!("expected sat: {other:?}"),
    }
    // An assumption-free solve leaves x unconstrained and succeeds.
    assert!(s.solve().is_sat());

    // 2. Cores: a core mentions only the *current* call's assumptions.
    let [a, b, c, d] = [0; 4].map(|_| CnfSink::new_var(&mut s).positive());
    s.add_clause([!a, !b]);
    s.add_clause([!c, !d]);
    match s.solve_with(&[a, b]) {
        SatResult::Unsat { core } => {
            assert!(core.iter().all(|&l| l == a || l == b));
            assert!(!core.is_empty());
        }
        other => panic!("expected unsat: {other:?}"),
    }
    match s.solve_with(&[c, d]) {
        SatResult::Unsat { core } => {
            assert!(
                core.iter().all(|&l| l == c || l == d),
                "core mentions a previous call's assumptions: {core:?}"
            );
        }
        other => panic!("expected unsat: {other:?}"),
    }

    // 3. Trail: after an unsat-under-assumptions call the solver is back to
    //    a state where the formula minus assumptions is satisfiable, and
    //    each pair is independently assumable again.
    assert!(s.solve_with(&[a, !b]).is_sat());
    assert!(s.solve_with(&[c, !d]).is_sat());
    assert!(s.solve().is_sat());
}

#[test]
fn var_index_stability_across_solving() {
    // Variables allocated after a solve must not alias earlier ones.
    let mut s = Solver::new();
    let a = CnfSink::new_var(&mut s);
    s.assert_true(a.positive());
    assert!(s.solve().is_sat());
    let b = CnfSink::new_var(&mut s);
    assert_ne!(a, b);
    s.assert_false(b.positive());
    match s.solve() {
        SatResult::Sat(m) => {
            assert!(m.var_is_true(a));
            assert!(!m.var_is_true(b));
        }
        other => panic!("expected sat: {other:?}"),
    }
}

#[test]
fn conflicting_totalizer_bounds_unsat() {
    let mut s = Solver::new();
    let xs = vars(&mut s, 6);
    let t = Totalizer::build(&mut s, xs);
    s.assert_true(t.at_least(4).expect("bound"));
    s.assert_true(t.at_most(2).expect("bound"));
    assert!(s.solve().is_unsat());
    let _ = Var::from_index(0);
}
