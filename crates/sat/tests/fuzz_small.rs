//! Certified fuzzing: random CNFs of up to 20 variables are solved with
//! DRAT logging enabled and cross-checked against brute-force enumeration.
//! Every SAT answer must come with a model the formula evaluates to true
//! under; every UNSAT answer must come with a proof the independent DRAT
//! checker accepts. This closes the loop the plain differential test
//! leaves open: an UNSAT verdict is never taken on the solver's word.

use etcs_sat::proof::{check_drat, DratProof};
use etcs_sat::{CnfSink, Formula, PreprocessConfig, SatResult, Solver, Var};
use etcs_testkit::{cases, Rng};
use std::sync::{Arc, Mutex};

/// A random CNF over `2..=max_vars` variables as raw signed integers
/// (`±(var + 1)` like DIMACS). Clause count scales with the variable
/// count so large instances are not trivially satisfiable.
fn random_cnf(rng: &mut Rng, max_vars: usize) -> (usize, Vec<Vec<i32>>) {
    let nv = rng.range(2, max_vars + 1);
    let nc = rng.range(1, 4 * nv + 1);
    let clauses = rng.vec(nc, |rng| {
        let len = rng.range(1, 4);
        rng.vec(len, |rng| {
            let v = rng.range(1, nv + 1) as i32;
            if rng.bool() {
                v
            } else {
                -v
            }
        })
    });
    (nv, clauses)
}

fn build_formula(nv: usize, clauses: &[Vec<i32>]) -> Formula {
    let mut f = Formula::new();
    let vars: Vec<Var> = (0..nv).map(|_| f.new_var()).collect();
    for c in clauses {
        let lits: Vec<_> = c
            .iter()
            .map(|&s| vars[(s.unsigned_abs() - 1) as usize].lit(s > 0))
            .collect();
        f.add_clause_from(&lits);
    }
    f
}

/// Brute-force satisfiability over all `2^nv` assignments. Clauses are
/// precompiled to positive/negative bitmasks so the full 20-variable
/// sweep (about a million assignments) stays cheap even in debug builds.
fn brute_force_sat(nv: usize, clauses: &[Vec<i32>]) -> bool {
    let compiled: Vec<(u32, u32)> = clauses
        .iter()
        .map(|c| {
            let mut pos = 0u32;
            let mut neg = 0u32;
            for &s in c {
                let bit = 1u32 << (s.unsigned_abs() - 1);
                if s > 0 {
                    pos |= bit;
                } else {
                    neg |= bit;
                }
            }
            (pos, neg)
        })
        .collect();
    (0..(1u64 << nv)).any(|mask| {
        let m = mask as u32;
        compiled
            .iter()
            .all(|&(pos, neg)| m & pos != 0 || !m & neg != 0)
    })
}

/// Solves `f` with proof logging; returns the result and the proof.
fn solve_logged(f: &Formula) -> (SatResult, DratProof) {
    let proof = Arc::new(Mutex::new(DratProof::new()));
    let mut s = Solver::new();
    s.set_proof_sink(Box::new(Arc::clone(&proof)));
    f.load_into(&mut s);
    let result = s.solve();
    drop(s);
    let proof = Arc::try_unwrap(proof)
        .expect("solver handle dropped")
        .into_inner()
        .expect("proof lock");
    (result, proof)
}

/// Shared body: solve one random instance and insist every answer is
/// certified — SAT by a checkable model, UNSAT by a checkable proof.
fn check_one(rng: &mut Rng, max_vars: usize) {
    let (nv, clauses) = random_cnf(rng, max_vars);
    let expected = brute_force_sat(nv, &clauses);
    let f = build_formula(nv, &clauses);
    let (result, proof) = solve_logged(&f);
    match result {
        SatResult::Sat(m) => {
            assert!(expected, "solver said SAT on an UNSAT {nv}-var instance");
            assert!(f.eval(&m), "returned model violates a clause");
        }
        SatResult::Unsat { .. } => {
            assert!(!expected, "solver said UNSAT on a SAT {nv}-var instance");
            let outcome = check_drat(f.clauses(), &proof, &[])
                .unwrap_or_else(|e| panic!("UNSAT proof rejected on {nv} vars: {e}"));
            assert!(
                outcome.checked_lemmas >= 1,
                "an UNSAT certificate must derive the empty clause"
            );
        }
        SatResult::Unknown => panic!("no budget was set"),
    }
}

/// Solves `f` with the certified preprocessor in front of the search;
/// returns the result and the combined (preprocessing + search) proof.
fn solve_preprocessed_logged(f: &Formula) -> (SatResult, DratProof) {
    let proof = Arc::new(Mutex::new(DratProof::new()));
    let mut s = Solver::new();
    s.set_proof_sink(Box::new(Arc::clone(&proof)));
    f.load_into(&mut s);
    s.preprocess(&PreprocessConfig::default());
    let result = s.solve();
    drop(s);
    let proof = Arc::try_unwrap(proof)
        .expect("solver handle dropped")
        .into_inner()
        .expect("proof lock");
    (result, proof)
}

/// Differential body: the same instance solved directly and through the
/// preprocessor must give bit-identical verdicts. Reconstructed SAT models
/// are checked against the *original* formula (model reconstruction must
/// undo variable elimination exactly); UNSAT proofs are checked against
/// the *original* axioms (preprocessing derivations must be DRAT-valid).
fn check_one_preprocessed(rng: &mut Rng, max_vars: usize) {
    let (nv, clauses) = random_cnf(rng, max_vars);
    let f = build_formula(nv, &clauses);
    let (direct, _) = solve_logged(&f);
    let (result, proof) = solve_preprocessed_logged(&f);
    match (&direct, &result) {
        (SatResult::Sat(_), SatResult::Sat(_))
        | (SatResult::Unsat { .. }, SatResult::Unsat { .. }) => {}
        _ => panic!("preprocessing changed the verdict on a {nv}-var instance"),
    }
    match result {
        SatResult::Sat(m) => {
            assert!(
                f.eval(&m),
                "reconstructed model violates an original clause on {nv} vars"
            );
        }
        SatResult::Unsat { .. } => {
            let outcome = check_drat(f.clauses(), &proof, &[])
                .unwrap_or_else(|e| panic!("preprocessed UNSAT proof rejected on {nv} vars: {e}"));
            assert!(
                outcome.checked_lemmas >= 1,
                "an UNSAT certificate must derive the empty clause"
            );
        }
        SatResult::Unknown => panic!("no budget was set"),
    }
}

#[test]
fn fuzz_up_to_twenty_vars_certified() {
    cases(48, |rng| check_one(rng, 20));
}

#[test]
fn fuzz_preprocessed_matches_direct_up_to_twenty_vars() {
    cases(48, |rng| check_one_preprocessed(rng, 20));
}

#[test]
fn fuzz_preprocessed_dense_small_instances_certify_unsat() {
    // The dense regime is frequently UNSAT, and small instances are where
    // the preprocessor most often closes the formula outright — both the
    // in-preprocessing and in-search refutations must check end-to-end.
    cases(96, |rng| check_one_preprocessed(rng, 5));
}

#[test]
fn fuzz_dense_small_instances_certify_unsat() {
    // Small variable counts with the same clause density are frequently
    // UNSAT, so this pass exercises the DRAT path far more often than the
    // wide sweep above.
    cases(96, |rng| check_one(rng, 5));
}
