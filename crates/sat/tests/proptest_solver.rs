//! Property-based tests: the CDCL solver, the cardinality encoders, and the
//! MaxSAT optimiser are cross-checked against brute-force enumeration on
//! randomly generated small instances.

use etcs_sat::{
    maxsat, CnfSink, Formula, Model, Objective, SatResult, Solver, Strategy as OptStrategy,
    Totalizer, Var,
};
use proptest::prelude::*;

/// A random CNF over `num_vars` variables as raw signed integers
/// (`±(var + 1)` like DIMACS).
fn cnf_strategy(
    max_vars: usize,
    max_clauses: usize,
) -> impl Strategy<Value = (usize, Vec<Vec<i32>>)> {
    (2..=max_vars).prop_flat_map(move |nv| {
        let clause = proptest::collection::vec(
            (1..=nv as i32).prop_flat_map(|v| prop_oneof![Just(v), Just(-v)]),
            1..=3,
        );
        proptest::collection::vec(clause, 1..=max_clauses).prop_map(move |cs| (nv, cs))
    })
}

fn build_formula(nv: usize, clauses: &[Vec<i32>]) -> Formula {
    let mut f = Formula::new();
    let vars: Vec<Var> = (0..nv).map(|_| f.new_var()).collect();
    for c in clauses {
        let lits: Vec<_> = c
            .iter()
            .map(|&s| vars[(s.unsigned_abs() - 1) as usize].lit(s > 0))
            .collect();
        f.add_clause_from(&lits);
    }
    f
}

/// Brute-force satisfiability by enumerating all assignments.
fn brute_force_sat(nv: usize, clauses: &[Vec<i32>]) -> bool {
    (0..(1u64 << nv)).any(|mask| {
        clauses.iter().all(|c| {
            c.iter().any(|&s| {
                let bit = mask & (1 << (s.unsigned_abs() - 1)) != 0;
                if s > 0 {
                    bit
                } else {
                    !bit
                }
            })
        })
    })
}

/// Brute-force optimum of "minimise #true among `obj_vars`" subject to the
/// clauses; `None` if unsatisfiable.
fn brute_force_min(nv: usize, clauses: &[Vec<i32>], obj_vars: &[usize]) -> Option<u32> {
    (0..(1u64 << nv))
        .filter(|&mask| {
            clauses.iter().all(|c| {
                c.iter().any(|&s| {
                    let bit = mask & (1 << (s.unsigned_abs() - 1)) != 0;
                    if s > 0 {
                        bit
                    } else {
                        !bit
                    }
                })
            })
        })
        .map(|mask| obj_vars.iter().filter(|&&v| mask & (1 << v) != 0).count() as u32)
        .min()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn solver_agrees_with_brute_force((nv, clauses) in cnf_strategy(10, 40)) {
        let f = build_formula(nv, &clauses);
        let mut s = Solver::new();
        f.load_into(&mut s);
        let expected = brute_force_sat(nv, &clauses);
        match s.solve() {
            SatResult::Sat(m) => {
                prop_assert!(expected, "solver said SAT on an UNSAT instance");
                prop_assert!(f.eval(&m), "returned model violates a clause");
            }
            SatResult::Unsat { .. } => prop_assert!(!expected, "solver said UNSAT on a SAT instance"),
            SatResult::Unknown => prop_assert!(false, "no budget was set"),
        }
    }

    #[test]
    fn incremental_assumptions_agree_with_monolithic(
        (nv, clauses) in cnf_strategy(8, 25),
        assumed in proptest::collection::vec((0usize..8, any::<bool>()), 0..4),
    ) {
        let f = build_formula(nv, &clauses);
        // Assumption-based solve.
        let mut s1 = Solver::new();
        f.load_into(&mut s1);
        let assumptions: Vec<_> = assumed
            .iter()
            .filter(|&&(v, _)| v < nv)
            .map(|&(v, pos)| Var::from_index(v).lit(pos))
            .collect();
        let incremental = s1.solve_with(&assumptions).is_sat();
        // Monolithic solve with the assumptions added as unit clauses.
        let mut s2 = Solver::new();
        f.load_into(&mut s2);
        for &a in &assumptions {
            s2.add_clause([a]);
        }
        let monolithic = s2.solve().is_sat();
        prop_assert_eq!(incremental, monolithic);
    }

    #[test]
    fn unsat_core_is_itself_unsat(
        (nv, clauses) in cnf_strategy(8, 25),
        assumed in proptest::collection::vec((0usize..8, any::<bool>()), 1..6),
    ) {
        let f = build_formula(nv, &clauses);
        let mut s = Solver::new();
        f.load_into(&mut s);
        let assumptions: Vec<_> = assumed
            .iter()
            .filter(|&&(v, _)| v < nv)
            .map(|&(v, pos)| Var::from_index(v).lit(pos))
            .collect();
        if let SatResult::Unsat { core } = s.solve_with(&assumptions) {
            // Every core literal must come from the assumptions.
            for l in &core {
                prop_assert!(assumptions.contains(l), "core literal not among assumptions");
            }
            // The core alone must already be inconsistent with the formula.
            let mut s2 = Solver::new();
            f.load_into(&mut s2);
            prop_assert!(s2.solve_with(&core).is_unsat(), "reported core is satisfiable");
        }
    }

    #[test]
    fn totalizer_counts_exactly(bits in proptest::collection::vec(any::<bool>(), 1..10)) {
        let mut s = Solver::new();
        let lits: Vec<_> = bits.iter().map(|_| CnfSink::new_var(&mut s).positive()).collect();
        let t = Totalizer::build(&mut s, lits.clone());
        for (l, &b) in lits.iter().zip(&bits) {
            if b { s.assert_true(*l) } else { s.assert_false(*l) }
        }
        let SatResult::Sat(m) = s.solve() else {
            return Err(TestCaseError::fail("pinned instance must be SAT"));
        };
        let count = bits.iter().filter(|&&b| b).count();
        for (i, &o) in t.outputs().iter().enumerate() {
            prop_assert_eq!(m.lit_is_true(o), i < count, "output {} wrong for count {}", i, count);
        }
    }

    #[test]
    fn maxsat_linear_matches_brute_force(
        (nv, clauses) in cnf_strategy(7, 20),
        obj_sel in proptest::collection::vec(any::<bool>(), 7),
    ) {
        let f = build_formula(nv, &clauses);
        let obj_vars: Vec<usize> = (0..nv).filter(|&v| obj_sel[v]).collect();
        let expected = brute_force_min(nv, &clauses, &obj_vars);
        let mut s = Solver::new();
        f.load_into(&mut s);
        let obj = Objective::count_of(obj_vars.iter().map(|&v| Var::from_index(v).positive()));
        match maxsat::minimize(&mut s, &obj, &[], OptStrategy::LinearSatUnsat) {
            maxsat::OptimizeOutcome::Optimal(r) => {
                prop_assert_eq!(Some(r.cost as u32), expected);
                prop_assert!(f.eval(&r.model));
            }
            maxsat::OptimizeOutcome::Unsat => prop_assert_eq!(expected, None),
            maxsat::OptimizeOutcome::Unknown { .. } => prop_assert!(false, "no budget was set"),
        }
    }

    #[test]
    fn maxsat_binary_matches_linear(
        (nv, clauses) in cnf_strategy(7, 20),
        obj_sel in proptest::collection::vec(any::<bool>(), 7),
    ) {
        let f = build_formula(nv, &clauses);
        let obj_vars: Vec<usize> = (0..nv).filter(|&v| obj_sel[v]).collect();
        let obj = Objective::count_of(obj_vars.iter().map(|&v| Var::from_index(v).positive()));
        let run = |strategy: OptStrategy| {
            let mut s = Solver::new();
            f.load_into(&mut s);
            match maxsat::minimize(&mut s, &obj, &[], strategy) {
                maxsat::OptimizeOutcome::Optimal(r) => Some(r.cost),
                maxsat::OptimizeOutcome::Unsat => None,
                maxsat::OptimizeOutcome::Unknown { .. } => panic!("no budget was set"),
            }
        };
        prop_assert_eq!(run(OptStrategy::LinearSatUnsat), run(OptStrategy::BinarySearch));
    }

    #[test]
    fn model_completion_is_stable(values in proptest::collection::vec(any::<bool>(), 1..16)) {
        let m = Model::from_values(values.clone());
        for (i, &b) in values.iter().enumerate() {
            prop_assert_eq!(m.var_is_true(Var::from_index(i)), b);
            prop_assert_eq!(m.lit_is_true(Var::from_index(i).positive()), b);
            prop_assert_eq!(m.lit_is_true(Var::from_index(i).negative()), !b);
        }
    }
}
