//! Property-based tests: the CDCL solver, the cardinality encoders, and the
//! MaxSAT optimiser are cross-checked against brute-force enumeration on
//! randomly generated small instances (deterministic `etcs-testkit` seeds).

use etcs_sat::{
    maxsat, CnfSink, Formula, Model, Objective, SatResult, Solver, Strategy as OptStrategy,
    Totalizer, Var,
};
use etcs_testkit::{cases, Rng};

/// A random CNF over `2..=max_vars` variables as raw signed integers
/// (`±(var + 1)` like DIMACS).
fn random_cnf(rng: &mut Rng, max_vars: usize, max_clauses: usize) -> (usize, Vec<Vec<i32>>) {
    let nv = rng.range(2, max_vars + 1);
    let nc = rng.range(1, max_clauses + 1);
    let clauses = rng.vec(nc, |rng| {
        let len = rng.range(1, 4);
        rng.vec(len, |rng| {
            let v = rng.range(1, nv + 1) as i32;
            if rng.bool() {
                v
            } else {
                -v
            }
        })
    });
    (nv, clauses)
}

fn build_formula(nv: usize, clauses: &[Vec<i32>]) -> Formula {
    let mut f = Formula::new();
    let vars: Vec<Var> = (0..nv).map(|_| f.new_var()).collect();
    for c in clauses {
        let lits: Vec<_> = c
            .iter()
            .map(|&s| vars[(s.unsigned_abs() - 1) as usize].lit(s > 0))
            .collect();
        f.add_clause_from(&lits);
    }
    f
}

fn mask_satisfies(mask: u64, clauses: &[Vec<i32>]) -> bool {
    clauses.iter().all(|c| {
        c.iter().any(|&s| {
            let bit = mask & (1 << (s.unsigned_abs() - 1)) != 0;
            if s > 0 {
                bit
            } else {
                !bit
            }
        })
    })
}

/// Brute-force satisfiability by enumerating all assignments.
fn brute_force_sat(nv: usize, clauses: &[Vec<i32>]) -> bool {
    (0..(1u64 << nv)).any(|mask| mask_satisfies(mask, clauses))
}

/// Brute-force optimum of "minimise #true among `obj_vars`" subject to the
/// clauses; `None` if unsatisfiable.
fn brute_force_min(nv: usize, clauses: &[Vec<i32>], obj_vars: &[usize]) -> Option<u32> {
    (0..(1u64 << nv))
        .filter(|&mask| mask_satisfies(mask, clauses))
        .map(|mask| obj_vars.iter().filter(|&&v| mask & (1 << v) != 0).count() as u32)
        .min()
}

#[test]
fn solver_agrees_with_brute_force() {
    cases(256, |rng| {
        let (nv, clauses) = random_cnf(rng, 10, 40);
        let f = build_formula(nv, &clauses);
        let mut s = Solver::new();
        f.load_into(&mut s);
        let expected = brute_force_sat(nv, &clauses);
        match s.solve() {
            SatResult::Sat(m) => {
                assert!(expected, "solver said SAT on an UNSAT instance");
                assert!(f.eval(&m), "returned model violates a clause");
            }
            SatResult::Unsat { .. } => {
                assert!(!expected, "solver said UNSAT on a SAT instance")
            }
            SatResult::Unknown => panic!("no budget was set"),
        }
    });
}

#[test]
fn incremental_assumptions_agree_with_monolithic() {
    cases(256, |rng| {
        let (nv, clauses) = random_cnf(rng, 8, 25);
        let f = build_formula(nv, &clauses);
        let num_assumptions = rng.below(4);
        let assumptions: Vec<_> = rng
            .vec(num_assumptions, |rng| (rng.below(8), rng.bool()))
            .into_iter()
            .filter(|&(v, _)| v < nv)
            .map(|(v, pos)| Var::from_index(v).lit(pos))
            .collect();
        // Assumption-based solve.
        let mut s1 = Solver::new();
        f.load_into(&mut s1);
        let incremental = s1.solve_with(&assumptions).is_sat();
        // Monolithic solve with the assumptions added as unit clauses.
        let mut s2 = Solver::new();
        f.load_into(&mut s2);
        for &a in &assumptions {
            s2.add_clause([a]);
        }
        let monolithic = s2.solve().is_sat();
        assert_eq!(incremental, monolithic);
    });
}

#[test]
fn unsat_core_is_itself_unsat() {
    cases(256, |rng| {
        let (nv, clauses) = random_cnf(rng, 8, 25);
        let f = build_formula(nv, &clauses);
        let num_assumptions = rng.range(1, 6);
        let assumptions: Vec<_> = rng
            .vec(num_assumptions, |rng| (rng.below(8), rng.bool()))
            .into_iter()
            .filter(|&(v, _)| v < nv)
            .map(|(v, pos)| Var::from_index(v).lit(pos))
            .collect();
        let mut s = Solver::new();
        f.load_into(&mut s);
        if let SatResult::Unsat { core } = s.solve_with(&assumptions) {
            // Every core literal must come from the assumptions.
            for l in &core {
                assert!(
                    assumptions.contains(l),
                    "core literal not among assumptions"
                );
            }
            // The core alone must already be inconsistent with the formula.
            let mut s2 = Solver::new();
            f.load_into(&mut s2);
            assert!(
                s2.solve_with(&core).is_unsat(),
                "reported core is satisfiable"
            );
        }
    });
}

#[test]
fn totalizer_counts_exactly() {
    cases(128, |rng| {
        let num_bits = rng.range(1, 10);
        let bits = rng.vec(num_bits, Rng::bool);
        let mut s = Solver::new();
        let lits: Vec<_> = bits
            .iter()
            .map(|_| CnfSink::new_var(&mut s).positive())
            .collect();
        let t = Totalizer::build(&mut s, lits.clone());
        for (l, &b) in lits.iter().zip(&bits) {
            if b {
                s.assert_true(*l)
            } else {
                s.assert_false(*l)
            }
        }
        let SatResult::Sat(m) = s.solve() else {
            panic!("pinned instance must be SAT");
        };
        let count = bits.iter().filter(|&&b| b).count();
        for (i, &o) in t.outputs().iter().enumerate() {
            assert_eq!(
                m.lit_is_true(o),
                i < count,
                "output {i} wrong for count {count}"
            );
        }
    });
}

#[test]
fn maxsat_linear_matches_brute_force() {
    cases(256, |rng| {
        let (nv, clauses) = random_cnf(rng, 7, 20);
        let obj_sel = rng.vec(7, Rng::bool);
        let f = build_formula(nv, &clauses);
        let obj_vars: Vec<usize> = (0..nv).filter(|&v| obj_sel[v]).collect();
        let expected = brute_force_min(nv, &clauses, &obj_vars);
        let mut s = Solver::new();
        f.load_into(&mut s);
        let obj = Objective::count_of(obj_vars.iter().map(|&v| Var::from_index(v).positive()));
        match maxsat::minimize(&mut s, &obj, &[], OptStrategy::LinearSatUnsat) {
            maxsat::OptimizeOutcome::Optimal(r) => {
                assert_eq!(Some(r.cost as u32), expected);
                assert!(f.eval(&r.model));
            }
            maxsat::OptimizeOutcome::Unsat => assert_eq!(expected, None),
            maxsat::OptimizeOutcome::Unknown { .. } => panic!("no budget was set"),
        }
    });
}

#[test]
fn maxsat_binary_matches_linear() {
    cases(256, |rng| {
        let (nv, clauses) = random_cnf(rng, 7, 20);
        let obj_sel = rng.vec(7, Rng::bool);
        let f = build_formula(nv, &clauses);
        let obj_vars: Vec<usize> = (0..nv).filter(|&v| obj_sel[v]).collect();
        let obj = Objective::count_of(obj_vars.iter().map(|&v| Var::from_index(v).positive()));
        let run = |strategy: OptStrategy| {
            let mut s = Solver::new();
            f.load_into(&mut s);
            match maxsat::minimize(&mut s, &obj, &[], strategy) {
                maxsat::OptimizeOutcome::Optimal(r) => Some(r.cost),
                maxsat::OptimizeOutcome::Unsat => None,
                maxsat::OptimizeOutcome::Unknown { .. } => panic!("no budget was set"),
            }
        };
        assert_eq!(
            run(OptStrategy::LinearSatUnsat),
            run(OptStrategy::BinarySearch)
        );
    });
}

#[test]
fn model_completion_is_stable() {
    cases(128, |rng| {
        let len = rng.range(1, 16);
        let values = rng.vec(len, Rng::bool);
        let m = Model::from_values(values.clone());
        for (i, &b) in values.iter().enumerate() {
            assert_eq!(m.var_is_true(Var::from_index(i)), b);
            assert_eq!(m.lit_is_true(Var::from_index(i).positive()), b);
            assert_eq!(m.lit_is_true(Var::from_index(i).negative()), !b);
        }
    });
}
