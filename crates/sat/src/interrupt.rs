//! Cooperative interruption of long-running solves.
//!
//! An [`Interrupt`] is a cheap, cloneable token shared between a solver and
//! the code supervising it (another thread, a job scheduler, a signal
//! handler). The supervisor calls [`Interrupt::trigger`] — or arms a
//! wall-clock deadline — and the solver polls the token at restart
//! boundaries and every few dozen conflicts, returning
//! [`SatResult::Unknown`](crate::SatResult::Unknown) promptly without
//! poisoning its state: the trail is rolled back to level 0 and everything
//! learnt is kept, exactly as for conflict-budget exhaustion.
//!
//! The default token ([`Interrupt::none`]) carries no shared state at all,
//! so solvers that never get interrupted pay a single branch per poll.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why an interrupted solve stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InterruptReason {
    /// [`Interrupt::trigger`] was called (explicit cancellation).
    Cancelled,
    /// The armed wall-clock deadline passed.
    DeadlineExceeded,
}

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    /// Deadline as nanoseconds after `epoch`; 0 = no deadline armed.
    deadline_ns: AtomicU64,
    epoch: Instant,
}

/// A cooperative cancellation token, optionally carrying a wall-clock
/// deadline. Clones share the same state; triggering any clone interrupts
/// every solver the token was installed on.
///
/// # Examples
///
/// ```
/// use etcs_sat::{Interrupt, InterruptReason};
/// let token = Interrupt::new();
/// let shared = token.clone();
/// assert!(token.probe().is_none());
/// shared.trigger();
/// assert_eq!(token.probe(), Some(InterruptReason::Cancelled));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Interrupt {
    inner: Option<Arc<Inner>>,
    /// An upstream token this one also listens to. The in-process portfolio
    /// gives every worker a private sibling-cancellation token chained to
    /// the caller's external token, so a deadline or cancellation armed by a
    /// job scheduler still reaches every racing worker.
    parent: Option<Arc<Interrupt>>,
}

impl Interrupt {
    /// A token that can never fire. This is the solver default; probing it
    /// is a single branch.
    pub fn none() -> Self {
        Interrupt {
            inner: None,
            parent: None,
        }
    }

    /// A live token with no deadline; fires only via [`Interrupt::trigger`].
    pub fn new() -> Self {
        Interrupt {
            inner: Some(Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline_ns: AtomicU64::new(0),
                epoch: Instant::now(),
            })),
            parent: None,
        }
    }

    /// A live token that also fires whenever `parent` fires. Triggering the
    /// child never affects the parent, so a portfolio can cancel its sibling
    /// workers without cancelling the job that spawned them. The parent's
    /// reason takes precedence in [`Interrupt::probe`], so supervising code
    /// probing the *parent* still sees the true external cause.
    pub fn chained(parent: &Interrupt) -> Self {
        let mut token = Interrupt::new();
        if parent.inner.is_some() || parent.parent.is_some() {
            token.parent = Some(Arc::new(parent.clone()));
        }
        token
    }

    /// A live token whose deadline is `budget` from now.
    pub fn with_deadline(budget: Duration) -> Self {
        let token = Interrupt::new();
        token.arm_deadline(budget);
        token
    }

    /// Arms (or re-arms) the deadline to `budget` from now. A job scheduler
    /// creates the token at submission but starts the clock only when a
    /// worker picks the job up, so queueing time never counts against the
    /// solve. No-op on a [`Interrupt::none`] token.
    pub fn arm_deadline(&self, budget: Duration) {
        if let Some(inner) = &self.inner {
            let ns = inner
                .epoch
                .elapsed()
                .saturating_add(budget)
                .as_nanos()
                .min(u64::MAX as u128) as u64;
            // 0 means "unarmed"; a zero budget still has to fire.
            inner.deadline_ns.store(ns.max(1), Ordering::Release);
        }
    }

    /// Requests cancellation. Idempotent; no-op on a [`Interrupt::none`]
    /// token.
    pub fn trigger(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::Release);
        }
    }

    /// Checks whether the token has fired, and why. A chained parent's
    /// reason outranks this token's own state, and explicit cancellation
    /// takes precedence over an expired deadline.
    pub fn probe(&self) -> Option<InterruptReason> {
        if let Some(parent) = &self.parent {
            if let Some(reason) = parent.probe() {
                return Some(reason);
            }
        }
        let inner = self.inner.as_ref()?;
        if inner.cancelled.load(Ordering::Acquire) {
            return Some(InterruptReason::Cancelled);
        }
        let deadline = inner.deadline_ns.load(Ordering::Acquire);
        if deadline != 0 && inner.epoch.elapsed().as_nanos() >= deadline as u128 {
            return Some(InterruptReason::DeadlineExceeded);
        }
        None
    }

    /// `true` once the token has fired ([`Interrupt::probe`] without the
    /// reason).
    pub fn is_triggered(&self) -> bool {
        self.probe().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fires() {
        let t = Interrupt::none();
        t.trigger();
        t.arm_deadline(Duration::ZERO);
        assert_eq!(t.probe(), None);
        assert!(!t.is_triggered());
    }

    #[test]
    fn trigger_is_shared_across_clones() {
        let t = Interrupt::new();
        let c = t.clone();
        assert!(!c.is_triggered());
        t.trigger();
        assert_eq!(c.probe(), Some(InterruptReason::Cancelled));
    }

    #[test]
    fn zero_deadline_fires_immediately() {
        let t = Interrupt::new();
        assert!(t.probe().is_none());
        t.arm_deadline(Duration::ZERO);
        assert_eq!(t.probe(), Some(InterruptReason::DeadlineExceeded));
    }

    #[test]
    fn cancellation_outranks_deadline() {
        let t = Interrupt::with_deadline(Duration::ZERO);
        t.trigger();
        assert_eq!(t.probe(), Some(InterruptReason::Cancelled));
    }

    #[test]
    fn unarmed_deadline_does_not_fire() {
        let t = Interrupt::new();
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(t.probe(), None);
    }

    #[test]
    fn chained_child_fires_with_parent_and_reports_its_reason() {
        let parent = Interrupt::new();
        let child = Interrupt::chained(&parent);
        assert!(child.probe().is_none());
        parent.arm_deadline(Duration::ZERO);
        assert_eq!(child.probe(), Some(InterruptReason::DeadlineExceeded));
    }

    #[test]
    fn triggering_a_chained_child_leaves_the_parent_untouched() {
        let parent = Interrupt::new();
        let child = Interrupt::chained(&parent);
        child.trigger();
        assert_eq!(child.probe(), Some(InterruptReason::Cancelled));
        assert_eq!(parent.probe(), None);
    }

    #[test]
    fn chaining_a_none_parent_is_a_plain_token() {
        let child = Interrupt::chained(&Interrupt::none());
        assert!(child.parent.is_none());
        assert!(child.probe().is_none());
        child.trigger();
        assert_eq!(child.probe(), Some(InterruptReason::Cancelled));
    }
}
