//! DIMACS CNF import/export.
//!
//! Mainly a debugging and interoperability aid: formulas produced by the
//! ETCS encoder can be dumped and cross-checked with external solvers, and
//! external instances can be replayed against [`crate::Solver`].

use std::fmt::Write as _;

use crate::cnf::{CnfSink, Formula};
use crate::types::{Lit, Var};

/// Error produced when parsing a DIMACS file fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseDimacsError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "dimacs parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseDimacsError {}

/// Parses a DIMACS CNF document into a [`Formula`].
///
/// Comment lines (`c …`) and the problem line (`p cnf V C`) are accepted in
/// the usual places; clauses may span lines and are `0`-terminated. The
/// declared variable count is honoured (more variables than used is fine);
/// literals beyond it are an error.
///
/// # Errors
///
/// Returns [`ParseDimacsError`] on malformed input.
///
/// # Examples
///
/// ```
/// use etcs_sat::{parse_dimacs, Solver};
/// let f = parse_dimacs("p cnf 2 2\n1 2 0\n-1 0\n")?;
/// let mut s = Solver::new();
/// f.load_into(&mut s);
/// assert!(s.solve().is_sat());
/// # Ok::<(), etcs_sat::ParseDimacsError>(())
/// ```
pub fn parse_dimacs(input: &str) -> Result<Formula, ParseDimacsError> {
    let mut formula = Formula::new();
    let mut declared_vars: Option<usize> = None;
    let mut current: Vec<Lit> = Vec::new();

    for (lineno, line) in input.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') || line.starts_with('%') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            if declared_vars.is_some() {
                return Err(ParseDimacsError {
                    line: lineno,
                    message: "duplicate problem line".into(),
                });
            }
            let mut parts = rest.split_whitespace();
            if parts.next() != Some("cnf") {
                return Err(ParseDimacsError {
                    line: lineno,
                    message: "expected `p cnf <vars> <clauses>`".into(),
                });
            }
            let nv: usize =
                parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| ParseDimacsError {
                        line: lineno,
                        message: "missing or invalid variable count".into(),
                    })?;
            declared_vars = Some(nv);
            for _ in 0..nv {
                formula.new_var();
            }
            continue;
        }
        let nv = declared_vars.ok_or_else(|| ParseDimacsError {
            line: lineno,
            message: "clause before problem line".into(),
        })?;
        for tok in line.split_whitespace() {
            let value: i64 = tok.parse().map_err(|_| ParseDimacsError {
                line: lineno,
                message: format!("invalid literal `{tok}`"),
            })?;
            if value == 0 {
                formula.add_clause_from(&current);
                current.clear();
            } else {
                let var_ix = value.unsigned_abs() as usize - 1;
                if var_ix >= nv {
                    return Err(ParseDimacsError {
                        line: lineno,
                        message: format!("literal {value} exceeds declared variable count {nv}"),
                    });
                }
                current.push(Var::from_index(var_ix).lit(value > 0));
            }
        }
    }
    if !current.is_empty() {
        return Err(ParseDimacsError {
            line: input.lines().count(),
            message: "unterminated clause at end of input".into(),
        });
    }
    if declared_vars.is_none() {
        return Err(ParseDimacsError {
            line: 1,
            message: "missing problem line".into(),
        });
    }
    Ok(formula)
}

/// Serialises a [`Formula`] to DIMACS CNF text.
///
/// # Examples
///
/// ```
/// use etcs_sat::{Formula, CnfSink, write_dimacs, parse_dimacs};
/// let mut f = Formula::new();
/// let a = f.new_var().positive();
/// f.add_clause_from(&[!a]);
/// let text = write_dimacs(&f);
/// let back = parse_dimacs(&text).expect("roundtrip");
/// assert_eq!(back.num_clauses(), 1);
/// ```
pub fn write_dimacs(formula: &Formula) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "p cnf {} {}",
        formula.num_vars(),
        formula.num_clauses()
    );
    for clause in formula.clauses() {
        for &l in clause {
            let signed = (l.var().index() as i64 + 1) * if l.is_positive() { 1 } else { -1 };
            let _ = write!(out, "{signed} ");
        }
        let _ = writeln!(out, "0");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::Solver;

    #[test]
    fn parse_simple() {
        let f = parse_dimacs("c comment\np cnf 3 2\n1 -2 0\n3 0\n").expect("parse");
        assert_eq!(f.num_vars(), 3);
        assert_eq!(f.num_clauses(), 2);
    }

    #[test]
    fn parse_multiline_clause() {
        let f = parse_dimacs("p cnf 3 1\n1 2\n3 0\n").expect("parse");
        assert_eq!(f.num_clauses(), 1);
        assert_eq!(f.clauses()[0].len(), 3);
    }

    #[test]
    fn rejects_clause_before_header() {
        let e = parse_dimacs("1 2 0\n").expect_err("should fail");
        assert!(e.message.contains("problem line"));
    }

    #[test]
    fn rejects_out_of_range_literal() {
        let e = parse_dimacs("p cnf 1 1\n2 0\n").expect_err("should fail");
        assert!(e.message.contains("exceeds"));
    }

    #[test]
    fn rejects_unterminated_clause() {
        let e = parse_dimacs("p cnf 2 1\n1 2\n").expect_err("should fail");
        assert!(e.message.contains("unterminated"));
    }

    #[test]
    fn rejects_garbage_literal() {
        let e = parse_dimacs("p cnf 2 1\n1 x 0\n").expect_err("should fail");
        assert!(e.message.contains("invalid literal"));
    }

    #[test]
    fn roundtrip_preserves_semantics() {
        let text = "p cnf 4 3\n1 2 0\n-1 3 0\n-2 -3 4 0\n";
        let f = parse_dimacs(text).expect("parse");
        let back = write_dimacs(&f);
        let f2 = parse_dimacs(&back).expect("reparse");
        assert_eq!(f.clauses(), f2.clauses());
        let mut s = Solver::new();
        f2.load_into(&mut s);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn display_of_error_mentions_line() {
        let e = parse_dimacs("p cnf 1 1\n5 0\n").expect_err("should fail");
        assert!(format!("{e}").contains("line 2"));
    }
}
