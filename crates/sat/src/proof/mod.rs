//! DRAT proof logging and checking.
//!
//! When a [`ProofSink`](crate::ProofSink) is installed on a
//! [`Solver`](crate::Solver) *before any clauses are added*, the solver
//! records every clause it derives (learnt clauses, level-0 simplification
//! results, the empty clause) and every clause it discards (database
//! reduction, satisfied-clause elimination). The resulting [`DratProof`] is
//! a standard DRAT certificate: each added clause is a reverse unit
//! propagation (RUP) consequence of the axioms plus the preceding lemmas,
//! so an UNSAT verdict can be re-validated by the independent checker in
//! [`check_drat`] — the solver is removed from the trusted base.
//!
//! Under assumptions, UNSAT verdicts are certified through the *core lemma*:
//! for a failed core `{a₁, …, aₙ}` the clause `¬a₁ ∨ … ∨ ¬aₙ` is RUP with
//! respect to the solver's final clause set, and [`check_drat`] takes it as
//! the `target` to validate (the empty clause, for refutations without
//! assumptions).
//!
//! The checker works *backwards*: it first validates the target against the
//! final clause set, then walks the proof in reverse, re-checking only the
//! lemmas that actually feed the refutation. Deleted clauses are reactivated
//! on the way back, so deletion information never weakens the check.

mod check;

pub use check::{check_drat, CheckOutcome, ProofError};

use crate::types::Lit;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Receiver for the solver's clause derivation/deletion events.
///
/// Install with [`Solver::set_proof_sink`](crate::Solver::set_proof_sink)
/// **before adding any clauses** — lemmas derived while loading (level-0
/// simplifications) are part of the certificate.
///
/// Sinks are `Send` so a proof-logging solver can move across threads (the
/// batch layers in `etcs-core` do); the in-process portfolio still refuses
/// to *race* proof-logging workers, because imported clauses have no local
/// derivation (see `parallel`).
pub trait ProofSink: fmt::Debug + Send {
    /// A clause was derived; it is RUP with respect to everything emitted
    /// before it plus the axioms. The empty slice is the empty clause.
    fn add_clause(&mut self, lits: &[Lit]);

    /// A previously active clause (axiom or lemma) was discarded.
    fn delete_clause(&mut self, lits: &[Lit]);
}

/// One step of a DRAT proof.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofStep {
    /// Clause addition (a RUP lemma).
    Add(Vec<Lit>),
    /// Clause deletion.
    Delete(Vec<Lit>),
}

/// An in-memory DRAT proof: the ordered list of clause additions and
/// deletions emitted during one (or several incremental) solver runs.
///
/// # Examples
///
/// ```
/// use etcs_sat::{proof::{check_drat, DratProof}, SatResult, Solver};
/// use std::sync::{Arc, Mutex};
///
/// let proof = Arc::new(Mutex::new(DratProof::new()));
/// let mut s = Solver::new();
/// s.set_proof_sink(Box::new(Arc::clone(&proof)));
/// let a = s.new_var().positive();
/// let axioms = vec![vec![a], vec![!a]];
/// for c in &axioms {
///     s.add_clause(c.iter().copied());
/// }
/// assert!(matches!(s.solve(), SatResult::Unsat { .. }));
/// let proof = proof.lock().expect("proof lock");
/// check_drat(&axioms, &proof, &[]).expect("certificate is valid");
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DratProof {
    steps: Vec<ProofStep>,
}

impl DratProof {
    /// Creates an empty proof.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded steps, in emission order.
    pub fn steps(&self) -> &[ProofStep] {
        &self.steps
    }

    /// Mutable access to the steps (used by tests to corrupt proofs).
    pub fn steps_mut(&mut self) -> &mut [ProofStep] {
        &mut self.steps
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` if no steps were recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Appends a step directly (used by parsers and tests).
    pub fn push(&mut self, step: ProofStep) {
        self.steps.push(step);
    }

    /// Serialises to the standard textual DRAT format: one step per line,
    /// DIMACS literals terminated by `0`, deletions prefixed with `d`.
    pub fn to_drat_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for step in &self.steps {
            let (prefix, lits) = match step {
                ProofStep::Add(lits) => ("", lits),
                ProofStep::Delete(lits) => ("d ", lits),
            };
            out.push_str(prefix);
            for &l in lits {
                let _ = write!(out, "{} ", lit_to_dimacs(l));
            }
            out.push_str("0\n");
        }
        out
    }

    /// Parses the textual DRAT format produced by [`DratProof::to_drat_text`]
    /// (and by other DRAT-emitting solvers).
    pub fn parse_drat_text(text: &str) -> Result<Self, ProofParseError> {
        let mut proof = DratProof::new();
        for (line_no, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('c') {
                continue;
            }
            let (is_delete, body) = match line.strip_prefix('d') {
                Some(rest) => (true, rest),
                None => (false, line),
            };
            let mut lits = Vec::new();
            let mut terminated = false;
            for tok in body.split_ascii_whitespace() {
                let n: i64 = tok.parse().map_err(|_| ProofParseError {
                    line: line_no + 1,
                    message: format!("invalid literal token {tok:?}"),
                })?;
                if n == 0 {
                    terminated = true;
                    break;
                }
                lits.push(lit_from_dimacs(n).ok_or(ProofParseError {
                    line: line_no + 1,
                    message: format!("literal {n} out of range"),
                })?);
            }
            if !terminated {
                return Err(ProofParseError {
                    line: line_no + 1,
                    message: "missing terminating 0".into(),
                });
            }
            proof.push(if is_delete {
                ProofStep::Delete(lits)
            } else {
                ProofStep::Add(lits)
            });
        }
        Ok(proof)
    }
}

/// Error from [`DratProof::parse_drat_text`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProofParseError {
    /// 1-based source line of the offending step.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ProofParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DRAT parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ProofParseError {}

/// 1-based signed DIMACS code of a literal.
fn lit_to_dimacs(l: Lit) -> i64 {
    let v = l.var().index() as i64 + 1;
    if l.is_positive() {
        v
    } else {
        -v
    }
}

/// Literal from a non-zero signed DIMACS code.
fn lit_from_dimacs(n: i64) -> Option<Lit> {
    let idx = usize::try_from(n.unsigned_abs().checked_sub(1)?).ok()?;
    if idx >= (u32::MAX >> 1) as usize {
        return None;
    }
    Some(crate::types::Var::from_index(idx).lit(n > 0))
}

impl ProofSink for DratProof {
    fn add_clause(&mut self, lits: &[Lit]) {
        self.steps.push(ProofStep::Add(lits.to_vec()));
    }

    fn delete_clause(&mut self, lits: &[Lit]) {
        self.steps.push(ProofStep::Delete(lits.to_vec()));
    }
}

/// Shared-handle sink: the caller keeps one `Arc` and gives the solver the
/// other, so the proof can be inspected after (or between) solver runs. The
/// mutex is uncontended in practice — a solver emits from one thread at a
/// time — it exists to keep the handle `Send` for the batch layers.
impl ProofSink for Arc<Mutex<DratProof>> {
    fn add_clause(&mut self, lits: &[Lit]) {
        self.lock().expect("proof sink poisoned").add_clause(lits);
    }

    fn delete_clause(&mut self, lits: &[Lit]) {
        self.lock()
            .expect("proof sink poisoned")
            .delete_clause(lits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Var;

    fn l(n: i64) -> Lit {
        lit_from_dimacs(n).unwrap()
    }

    #[test]
    fn dimacs_codes_roundtrip() {
        for n in [1i64, -1, 2, -2, 17, -40] {
            assert_eq!(lit_to_dimacs(l(n)), n);
        }
        assert_eq!(lit_from_dimacs(1), Some(Var::from_index(0).positive()));
        assert_eq!(lit_from_dimacs(-3), Some(Var::from_index(2).negative()));
    }

    #[test]
    fn text_format_roundtrip() {
        let mut p = DratProof::new();
        p.push(ProofStep::Add(vec![l(1), l(-2)]));
        p.push(ProofStep::Delete(vec![l(3)]));
        p.push(ProofStep::Add(vec![]));
        let text = p.to_drat_text();
        assert_eq!(text, "1 -2 0\nd 3 0\n0\n");
        assert_eq!(DratProof::parse_drat_text(&text).unwrap(), p);
    }

    #[test]
    fn parse_skips_comments_and_blank_lines() {
        let p = DratProof::parse_drat_text("c comment\n\n1 0\n").unwrap();
        assert_eq!(p.steps(), &[ProofStep::Add(vec![l(1)])]);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(DratProof::parse_drat_text("1 x 0\n").is_err());
        let err = DratProof::parse_drat_text("1 2\n").unwrap_err();
        assert!(err.to_string().contains("terminating"));
    }

    #[test]
    fn shared_handle_records_through_arc() {
        let shared = Arc::new(Mutex::new(DratProof::new()));
        let mut handle: Box<dyn ProofSink> = Box::new(Arc::clone(&shared));
        handle.add_clause(&[l(1)]);
        handle.delete_clause(&[l(1)]);
        assert_eq!(shared.lock().expect("proof lock").len(), 2);
    }
}
