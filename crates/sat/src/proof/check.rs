//! Backward RUP/DRAT proof checking.
//!
//! [`check_drat`] validates a [`DratProof`] against the axiom clauses it was
//! recorded over: the `target` clause (the empty clause for a plain
//! refutation, the negated-core clause for an assumption-based one) must be
//! a reverse-unit-propagation (RUP) consequence of the final clause set, and
//! every lemma feeding that derivation must in turn be RUP with respect to
//! the clause set in force when it was added.
//!
//! The implementation is the standard backward-checking algorithm: a forward
//! pass resolves clause identities (additions and deletions), the target is
//! checked against the final set, and the proof is then replayed in reverse
//! — `Add` events deactivate their clause and re-verify it if it was marked
//! as an antecedent, `Delete` events reactivate theirs. Only lemmas the
//! refutation actually depends on are re-checked, which keeps validation far
//! cheaper than the search that produced the proof.

use super::{DratProof, ProofStep};
use crate::types::{LBool, Lit};
use std::collections::HashMap;
use std::fmt;

/// Proof rejected by [`check_drat`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofError {
    /// The target clause does not follow from the final clause set by unit
    /// propagation.
    TargetNotRup,
    /// A lemma the refutation depends on is not RUP at its insertion point.
    LemmaNotRup {
        /// 0-based index of the offending step in the proof.
        step: usize,
    },
}

impl fmt::Display for ProofError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProofError::TargetNotRup => {
                write!(f, "target clause is not RUP w.r.t. the final clause set")
            }
            ProofError::LemmaNotRup { step } => {
                write!(
                    f,
                    "proof step {step}: lemma is not RUP at its insertion point"
                )
            }
        }
    }
}

impl std::error::Error for ProofError {}

/// Statistics from a successful [`check_drat`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckOutcome {
    /// Number of `Add` steps in the proof.
    pub lemmas: usize,
    /// Number of lemmas the refutation depended on (and that were therefore
    /// re-verified); the rest were skipped as irrelevant.
    pub checked_lemmas: usize,
}

/// Validates `proof` as a DRAT certificate that `target` follows from
/// `axioms`.
///
/// * For a refutation without assumptions, pass `&[]` as `target` (the empty
///   clause).
/// * For an assumption-based UNSAT verdict with failed core `{a₁, …, aₙ}`,
///   pass the clause `[¬a₁, …, ¬aₙ]`.
///
/// Deletions of clauses not currently active are ignored (standard DRAT
/// checker behaviour); deletions of active clauses take full effect, so a
/// proof that derives a lemma from an already-deleted clause is rejected.
pub fn check_drat(
    axioms: &[Vec<Lit>],
    proof: &DratProof,
    target: &[Lit],
) -> Result<CheckOutcome, ProofError> {
    Checker::build(axioms, proof, target).run(proof, target)
}

/// A clause inside the checker.
struct CClause {
    /// Sorted, deduplicated literals (clause identity).
    lits: Vec<Lit>,
    active: bool,
    /// Marked when some validated derivation used this clause.
    needed: bool,
}

/// Forward-pass resolution of a proof step to a clause index.
#[derive(Clone, Copy)]
enum Event {
    Add(usize),
    Delete(usize),
    /// Deletion of a clause that was not active — ignored.
    Skip,
}

struct Checker {
    clauses: Vec<CClause>,
    /// Indices of length-≥2 clauses watching each literal (never pruned;
    /// inactive clauses are skipped during traversal).
    watches: Vec<Vec<usize>>,
    /// Indices of unit clauses (enqueued at the start of every RUP check).
    unit_idxs: Vec<usize>,
    /// Indices of empty clauses (an active one makes any check succeed).
    empty_idxs: Vec<usize>,
    assigns: Vec<LBool>,
    /// Clause that propagated each variable (`None` for check assumptions).
    reasons: Vec<Option<usize>>,
    trail: Vec<Lit>,
    events: Vec<Event>,
}

impl Checker {
    fn build(axioms: &[Vec<Lit>], proof: &DratProof, target: &[Lit]) -> Self {
        let num_vars = axioms
            .iter()
            .flatten()
            .chain(proof.steps().iter().flat_map(|s| match s {
                ProofStep::Add(l) | ProofStep::Delete(l) => l.iter(),
            }))
            .chain(target.iter())
            .map(|l| l.var().index() + 1)
            .max()
            .unwrap_or(0);
        let mut checker = Checker {
            clauses: Vec::with_capacity(axioms.len() + proof.len()),
            watches: vec![Vec::new(); num_vars * 2],
            unit_idxs: Vec::new(),
            empty_idxs: Vec::new(),
            assigns: vec![LBool::Undef; num_vars],
            reasons: vec![None; num_vars],
            trail: Vec::new(),
            events: Vec::with_capacity(proof.len()),
        };
        let mut by_key: HashMap<Vec<Lit>, Vec<usize>> = HashMap::new();
        for axiom in axioms {
            let idx = checker.insert(axiom);
            by_key
                .entry(checker.clauses[idx].lits.clone())
                .or_default()
                .push(idx);
        }
        for step in proof.steps() {
            let event = match step {
                ProofStep::Add(lits) => {
                    let idx = checker.insert(lits);
                    by_key
                        .entry(checker.clauses[idx].lits.clone())
                        .or_default()
                        .push(idx);
                    Event::Add(idx)
                }
                ProofStep::Delete(lits) => {
                    let key = normalize(lits);
                    match by_key
                        .get(&key)
                        .and_then(|idxs| idxs.iter().copied().find(|&i| checker.clauses[i].active))
                    {
                        Some(idx) => {
                            checker.clauses[idx].active = false;
                            Event::Delete(idx)
                        }
                        None => Event::Skip,
                    }
                }
            };
            checker.events.push(event);
        }
        checker
    }

    fn insert(&mut self, lits: &[Lit]) -> usize {
        let lits = normalize(lits);
        let idx = self.clauses.len();
        match lits.len() {
            0 => self.empty_idxs.push(idx),
            1 => self.unit_idxs.push(idx),
            _ => {
                self.watches[lits[0].index()].push(idx);
                self.watches[lits[1].index()].push(idx);
            }
        }
        self.clauses.push(CClause {
            lits,
            active: true,
            needed: false,
        });
        idx
    }

    fn run(mut self, proof: &DratProof, target: &[Lit]) -> Result<CheckOutcome, ProofError> {
        // The target must be RUP against the final clause set.
        match self.rup_antecedents(target) {
            Some(used) => self.mark_needed(&used),
            None => return Err(ProofError::TargetNotRup),
        }
        // Backward pass: undo each event; re-verify needed lemmas against
        // the clause set in force just before their insertion.
        let mut lemmas = 0usize;
        let mut checked = 0usize;
        for step in (0..self.events.len()).rev() {
            match self.events[step] {
                Event::Delete(idx) => self.clauses[idx].active = true,
                Event::Skip => {}
                Event::Add(idx) => {
                    lemmas += 1;
                    self.clauses[idx].active = false;
                    if !self.clauses[idx].needed {
                        continue;
                    }
                    checked += 1;
                    let lits = std::mem::take(&mut self.clauses[idx].lits);
                    let result = self.rup_antecedents(&lits);
                    self.clauses[idx].lits = lits;
                    match result {
                        Some(used) => self.mark_needed(&used),
                        None => return Err(ProofError::LemmaNotRup { step }),
                    }
                }
            }
        }
        debug_assert_eq!(
            lemmas,
            proof
                .steps()
                .iter()
                .filter(|s| matches!(s, ProofStep::Add(_)))
                .count()
        );
        Ok(CheckOutcome {
            lemmas,
            checked_lemmas: checked,
        })
    }

    fn mark_needed(&mut self, idxs: &[usize]) {
        for &i in idxs {
            self.clauses[i].needed = true;
        }
    }

    /// RUP check of `clause` against the currently active set: asserts the
    /// negation of every literal, unit-propagates, and on conflict returns
    /// the clause indices the derivation used (`None` if no conflict arises,
    /// i.e. the clause is not RUP).
    ///
    /// The assignment is fully rolled back before returning.
    fn rup_antecedents(&mut self, clause: &[Lit]) -> Option<Vec<usize>> {
        debug_assert!(self.trail.is_empty());
        let result = self.rup_inner(clause);
        // Roll back.
        for &p in &self.trail {
            self.assigns[p.var().index()] = LBool::Undef;
            self.reasons[p.var().index()] = None;
        }
        self.trail.clear();
        result
    }

    fn rup_inner(&mut self, clause: &[Lit]) -> Option<Vec<usize>> {
        if let Some(&idx) = self.empty_idxs.iter().find(|&&i| self.clauses[i].active) {
            return Some(vec![idx]);
        }
        // Level-0 facts of the active set.
        for i in 0..self.unit_idxs.len() {
            let idx = self.unit_idxs[i];
            if !self.clauses[idx].active {
                continue;
            }
            let u = self.clauses[idx].lits[0];
            match self.enqueue(u, Some(idx)) {
                Ok(()) => {}
                Err(conflicting_var) => {
                    return Some(self.antecedents_from(&[u], conflicting_var, Some(idx)));
                }
            }
        }
        // Negation of the candidate clause.
        for &l in clause {
            match self.enqueue(!l, None) {
                Ok(()) => {}
                Err(conflicting_var) => {
                    return Some(self.antecedents_from(&[!l], conflicting_var, None));
                }
            }
        }
        let conflict = self.propagate()?;
        let seeds = self.clauses[conflict].lits.clone();
        Some(self.antecedents_from(&seeds, usize::MAX, Some(conflict)))
    }

    /// Assigns `p` true. `Err(var)` if `p` is already false — a conflict with
    /// the existing assignment of `var`.
    fn enqueue(&mut self, p: Lit, reason: Option<usize>) -> Result<(), usize> {
        let v = p.var().index();
        match self.lit_value(p) {
            LBool::True => Ok(()),
            LBool::False => Err(v),
            LBool::Undef => {
                self.assigns[v] = LBool::from_bool(p.is_positive());
                self.reasons[v] = reason;
                self.trail.push(p);
                Ok(())
            }
        }
    }

    fn lit_value(&self, l: Lit) -> LBool {
        let v = self.assigns[l.var().index()];
        if l.is_positive() {
            v
        } else {
            v.negate()
        }
    }

    /// Two-watched-literal unit propagation over the active clauses; returns
    /// the conflicting clause index, or `None` when a fixpoint is reached.
    fn propagate(&mut self) -> Option<usize> {
        let mut qhead = 0;
        while qhead < self.trail.len() {
            let p = self.trail[qhead];
            qhead += 1;
            let false_lit = !p;
            let mut ws = std::mem::take(&mut self.watches[false_lit.index()]);
            let mut i = 0;
            let mut conflict = None;
            'watchers: while i < ws.len() {
                let cidx = ws[i];
                if !self.clauses[cidx].active {
                    // Keep the entry: the clause may be reactivated later in
                    // the backward pass.
                    i += 1;
                    continue;
                }
                // Move the falsified watched literal to slot 1.
                if self.clauses[cidx].lits[0] == false_lit {
                    self.clauses[cidx].lits.swap(0, 1);
                }
                debug_assert_eq!(self.clauses[cidx].lits[1], false_lit);
                let first = self.clauses[cidx].lits[0];
                if self.lit_value(first) == LBool::True {
                    i += 1;
                    continue;
                }
                // Search for a replacement watch.
                for k in 2..self.clauses[cidx].lits.len() {
                    let cand = self.clauses[cidx].lits[k];
                    if self.lit_value(cand) != LBool::False {
                        self.clauses[cidx].lits.swap(1, k);
                        self.watches[cand.index()].push(cidx);
                        ws.swap_remove(i);
                        continue 'watchers;
                    }
                }
                // Unit or conflicting.
                if self.lit_value(first) == LBool::False {
                    conflict = Some(cidx);
                    break;
                }
                let v = first.var().index();
                self.assigns[v] = LBool::from_bool(first.is_positive());
                self.reasons[v] = Some(cidx);
                self.trail.push(first);
                i += 1;
            }
            self.watches[false_lit.index()] = ws;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    /// Collects the clause indices in the implication-graph ancestry of a
    /// conflict: `extra` (the conflicting clause, if any) plus the reasons of
    /// every variable reachable from `seeds` / `conflicting_var`.
    fn antecedents_from(
        &self,
        seeds: &[Lit],
        conflicting_var: usize,
        extra: Option<usize>,
    ) -> Vec<usize> {
        let mut used: Vec<usize> = extra.into_iter().collect();
        let mut visited = vec![false; self.assigns.len()];
        let mut queue: Vec<usize> = seeds.iter().map(|l| l.var().index()).collect();
        if conflicting_var != usize::MAX {
            queue.push(conflicting_var);
        }
        while let Some(v) = queue.pop() {
            if visited[v] {
                continue;
            }
            visited[v] = true;
            if let Some(r) = self.reasons[v] {
                used.push(r);
                queue.extend(self.clauses[r].lits.iter().map(|l| l.var().index()));
            }
        }
        used.sort_unstable();
        used.dedup();
        used
    }
}

/// Sorted, deduplicated literal list — the clause identity used for
/// deletion matching.
fn normalize(lits: &[Lit]) -> Vec<Lit> {
    let mut v = lits.to_vec();
    v.sort_unstable();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Var;

    fn l(n: i64) -> Lit {
        Var::from_index((n.unsigned_abs() - 1) as usize).lit(n > 0)
    }

    fn clauses(spec: &[&[i64]]) -> Vec<Vec<Lit>> {
        spec.iter()
            .map(|c| c.iter().map(|&n| l(n)).collect())
            .collect()
    }

    /// (a∨b)(¬a∨b)(a∨¬b)(¬a∨¬b) — the smallest UNSAT 2-SAT instance.
    fn triangle() -> Vec<Vec<Lit>> {
        clauses(&[&[1, 2], &[-1, 2], &[1, -2], &[-1, -2]])
    }

    fn proof_of(steps: &[ProofStep]) -> DratProof {
        let mut p = DratProof::new();
        for s in steps {
            p.push(s.clone());
        }
        p
    }

    #[test]
    fn valid_refutation_is_accepted() {
        let proof = proof_of(&[ProofStep::Add(vec![l(2)]), ProofStep::Add(vec![])]);
        let outcome = check_drat(&triangle(), &proof, &[]).expect("valid proof");
        assert_eq!(outcome.lemmas, 2);
        assert_eq!(outcome.checked_lemmas, 2);
    }

    #[test]
    fn non_rup_lemma_is_rejected() {
        // With only (a∨b), the unit lemma b is not RUP.
        let axioms = clauses(&[&[1, 2]]);
        let proof = proof_of(&[ProofStep::Add(vec![l(2)])]);
        assert_eq!(
            check_drat(&axioms, &proof, &[l(2)]),
            Err(ProofError::LemmaNotRup { step: 0 })
        );
    }

    #[test]
    fn missing_refutation_is_rejected() {
        // A satisfiable formula with an empty proof cannot certify UNSAT.
        let axioms = clauses(&[&[1, 2]]);
        let proof = DratProof::new();
        assert_eq!(
            check_drat(&axioms, &proof, &[]),
            Err(ProofError::TargetNotRup)
        );
    }

    #[test]
    fn corrupted_proof_is_rejected() {
        // Deleting (a∨¬b) breaks the final conflict: after the unit lemma b,
        // only ¬a follows and no conflict arises.
        let proof = proof_of(&[
            ProofStep::Add(vec![l(2)]),
            ProofStep::Delete(vec![l(1), l(-2)]),
            ProofStep::Add(vec![]),
        ]);
        assert_eq!(
            check_drat(&triangle(), &proof, &[]),
            Err(ProofError::LemmaNotRup { step: 2 })
        );
    }

    #[test]
    fn deletion_of_unused_clause_is_harmless() {
        // (a∨b) is not needed once the unit lemma b exists.
        let proof = proof_of(&[
            ProofStep::Add(vec![l(2)]),
            ProofStep::Delete(vec![l(1), l(2)]),
            ProofStep::Add(vec![]),
        ]);
        let outcome = check_drat(&triangle(), &proof, &[]).expect("valid proof");
        assert_eq!(outcome.lemmas, 2);
    }

    #[test]
    fn deletion_of_unknown_clause_is_ignored() {
        let proof = proof_of(&[
            ProofStep::Add(vec![l(2)]),
            ProofStep::Delete(vec![l(1), l(2), l(-2)]),
            ProofStep::Add(vec![]),
        ]);
        assert!(check_drat(&triangle(), &proof, &[]).is_ok());
    }

    #[test]
    fn assumption_core_target_is_checked() {
        // Axioms: a → b, b → c. Under assumptions {a, ¬c} the formula is
        // UNSAT with core {a, ¬c}; the certified lemma is ¬a ∨ c — RUP
        // without any proof steps.
        let axioms = clauses(&[&[-1, 2], &[-2, 3]]);
        let proof = DratProof::new();
        let outcome = check_drat(&axioms, &proof, &[l(-1), l(3)]).expect("core lemma is RUP");
        assert_eq!(outcome.lemmas, 0);
        // A core that is not actually failing is rejected.
        assert_eq!(
            check_drat(&axioms, &proof, &[l(1)]),
            Err(ProofError::TargetNotRup)
        );
    }

    #[test]
    fn irrelevant_lemmas_are_skipped() {
        // The lemma over a fresh variable never feeds the refutation.
        let mut axioms = triangle();
        axioms.push(clauses(&[&[3, 4]]).remove(0));
        let proof = proof_of(&[
            ProofStep::Add(vec![l(2)]),
            ProofStep::Add(vec![l(3), l(4), l(2)]),
            ProofStep::Add(vec![]),
        ]);
        let outcome = check_drat(&axioms, &proof, &[]).expect("valid proof");
        assert_eq!(outcome.lemmas, 3);
        assert_eq!(outcome.checked_lemmas, 2);
    }

    #[test]
    fn duplicate_clause_instances_delete_one_at_a_time() {
        // Two copies of (a); deleting one keeps the other usable.
        let axioms = clauses(&[&[1], &[1], &[-1]]);
        let proof = proof_of(&[ProofStep::Delete(vec![l(1)]), ProofStep::Add(vec![])]);
        assert!(check_drat(&axioms, &proof, &[]).is_ok());
        // Deleting both copies removes the conflict entirely.
        let proof2 = proof_of(&[
            ProofStep::Delete(vec![l(1)]),
            ProofStep::Delete(vec![l(1)]),
            ProofStep::Add(vec![]),
        ]);
        assert!(check_drat(&axioms, &proof2, &[]).is_err());
    }

    #[test]
    fn tautological_axioms_are_tolerated() {
        let mut axioms = triangle();
        axioms.push(clauses(&[&[1, -1]]).remove(0));
        let proof = proof_of(&[ProofStep::Add(vec![l(2)]), ProofStep::Add(vec![])]);
        assert!(check_drat(&axioms, &proof, &[]).is_ok());
    }
}
