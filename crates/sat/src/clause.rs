//! Clause storage for the CDCL solver.
//!
//! Clauses live in a [`ClauseDb`] arena and are addressed by lightweight
//! [`ClauseRef`] handles. Deleted clauses release their literal storage but
//! keep their slot, so outstanding references (e.g. in watch lists that are
//! rebuilt lazily) can detect deletion instead of dereferencing stale data.

use crate::types::Lit;

/// Handle to a clause inside a [`ClauseDb`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub(crate) struct ClauseRef(pub(crate) u32);

impl ClauseRef {
    #[inline]
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

/// A single clause plus the metadata CDCL needs for clause management.
#[derive(Clone, Debug)]
pub(crate) struct Clause {
    lits: Vec<Lit>,
    /// Learnt clauses are subject to database reduction; problem clauses are
    /// permanent.
    pub(crate) learnt: bool,
    /// Literal-block distance at learning time (lower = more valuable).
    pub(crate) lbd: u32,
    /// Bump-and-decay activity used as a tiebreaker during reduction.
    pub(crate) activity: f64,
    /// Deleted clauses keep their slot but drop their literals.
    pub(crate) deleted: bool,
}

impl Clause {
    #[inline]
    pub(crate) fn lits(&self) -> &[Lit] {
        &self.lits
    }

    #[inline]
    pub(crate) fn lits_mut(&mut self) -> &mut [Lit] {
        &mut self.lits
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.lits.len()
    }

    /// Removes the literal at `i` (order-destroying swap-remove).
    #[inline]
    pub(crate) fn swap_remove(&mut self, i: usize) -> Lit {
        self.lits.swap_remove(i)
    }
}

/// Arena of clauses addressed by [`ClauseRef`].
#[derive(Clone, Debug, Default)]
pub(crate) struct ClauseDb {
    clauses: Vec<Clause>,
    /// Number of live (non-deleted) learnt clauses.
    num_learnt: usize,
    /// Number of live problem clauses.
    num_problem: usize,
}

impl ClauseDb {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Inserts a clause and returns its handle.
    ///
    /// The caller must guarantee `lits.len() >= 2`; unit and empty clauses
    /// are handled by the solver before reaching the database.
    pub(crate) fn push(&mut self, lits: Vec<Lit>, learnt: bool, lbd: u32) -> ClauseRef {
        debug_assert!(lits.len() >= 2, "database clauses must have >= 2 literals");
        if learnt {
            self.num_learnt += 1;
        } else {
            self.num_problem += 1;
        }
        let r = ClauseRef(self.clauses.len() as u32);
        self.clauses.push(Clause {
            lits,
            learnt,
            lbd,
            activity: 0.0,
            deleted: false,
        });
        r
    }

    #[inline]
    pub(crate) fn get(&self, r: ClauseRef) -> &Clause {
        &self.clauses[r.index()]
    }

    #[inline]
    pub(crate) fn get_mut(&mut self, r: ClauseRef) -> &mut Clause {
        &mut self.clauses[r.index()]
    }

    /// Marks a clause deleted and releases its literal storage.
    pub(crate) fn delete(&mut self, r: ClauseRef) {
        let c = &mut self.clauses[r.index()];
        debug_assert!(!c.deleted, "double delete of clause {r:?}");
        c.deleted = true;
        c.lits = Vec::new();
        if c.learnt {
            self.num_learnt -= 1;
        } else {
            self.num_problem -= 1;
        }
    }

    #[inline]
    pub(crate) fn is_deleted(&self, r: ClauseRef) -> bool {
        self.clauses[r.index()].deleted
    }

    /// Live learnt-clause count.
    #[inline]
    pub(crate) fn num_learnt(&self) -> usize {
        self.num_learnt
    }

    /// Live problem-clause count.
    #[inline]
    pub(crate) fn num_problem(&self) -> usize {
        self.num_problem
    }

    /// Iterates over handles of all live clauses.
    pub(crate) fn iter_refs(&self) -> impl Iterator<Item = ClauseRef> + '_ {
        self.clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.deleted)
            .map(|(i, _)| ClauseRef(i as u32))
    }

    /// Handles of live learnt clauses (candidates for reduction).
    pub(crate) fn learnt_refs(&self) -> Vec<ClauseRef> {
        self.clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.deleted && c.learnt)
            .map(|(i, _)| ClauseRef(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Var;

    fn lits(ix: &[usize]) -> Vec<Lit> {
        ix.iter().map(|&i| Var::from_index(i).positive()).collect()
    }

    #[test]
    fn push_and_get() {
        let mut db = ClauseDb::new();
        let r = db.push(lits(&[0, 1, 2]), false, 0);
        assert_eq!(db.get(r).len(), 3);
        assert!(!db.get(r).learnt);
        assert_eq!(db.num_problem(), 1);
        assert_eq!(db.num_learnt(), 0);
    }

    #[test]
    fn delete_releases_and_counts() {
        let mut db = ClauseDb::new();
        let p = db.push(lits(&[0, 1]), false, 0);
        let l = db.push(lits(&[2, 3]), true, 2);
        assert_eq!(db.num_learnt(), 1);
        db.delete(l);
        assert!(db.is_deleted(l));
        assert!(!db.is_deleted(p));
        assert_eq!(db.num_learnt(), 0);
        assert_eq!(db.num_problem(), 1);
        assert_eq!(db.iter_refs().count(), 1);
    }

    #[test]
    fn learnt_refs_only_live_learnt() {
        let mut db = ClauseDb::new();
        db.push(lits(&[0, 1]), false, 0);
        let l1 = db.push(lits(&[2, 3]), true, 2);
        let l2 = db.push(lits(&[4, 5]), true, 3);
        db.delete(l1);
        assert_eq!(db.learnt_refs(), vec![l2]);
    }

    #[test]
    fn swap_remove_shrinks() {
        let mut db = ClauseDb::new();
        let r = db.push(lits(&[0, 1, 2]), false, 0);
        let removed = db.get_mut(r).swap_remove(0);
        assert_eq!(removed, Var::from_index(0).positive());
        assert_eq!(db.get(r).len(), 2);
    }
}
