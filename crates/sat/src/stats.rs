//! Cumulative search statistics.

use std::fmt;

/// Counters accumulated across all `solve` calls of a
/// [`Solver`](crate::Solver).
///
/// # Examples
///
/// ```
/// use etcs_sat::Solver;
/// let mut s = Solver::new();
/// let a = s.new_var();
/// s.add_clause([a.positive()]);
/// s.solve();
/// // A trivially satisfiable instance needs no conflicts.
/// assert_eq!(s.stats().conflicts, 0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Branching decisions made.
    pub decisions: u64,
    /// Literals dequeued by unit propagation.
    pub propagations: u64,
    /// Conflicts encountered (= learnt clauses, counting units).
    pub conflicts: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Total literals in learnt clauses (after minimisation).
    pub learnt_literals: u64,
    /// Learnt clauses removed by database reduction.
    pub deleted_clauses: u64,
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "decisions={} propagations={} conflicts={} restarts={} learnt_lits={} deleted={}",
            self.decisions,
            self.propagations,
            self.conflicts,
            self.restarts,
            self.learnt_literals,
            self.deleted_clauses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let s = Stats::default();
        assert_eq!(s.decisions, 0);
        assert_eq!(s.conflicts, 0);
    }

    #[test]
    fn display_is_nonempty() {
        let s = Stats::default();
        assert!(format!("{s}").contains("conflicts=0"));
    }
}
