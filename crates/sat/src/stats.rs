//! Cumulative search statistics.

use std::fmt;

/// Counters accumulated across all `solve` calls of a
/// [`Solver`](crate::Solver).
///
/// # Examples
///
/// ```
/// use etcs_sat::Solver;
/// let mut s = Solver::new();
/// let a = s.new_var();
/// s.add_clause([a.positive()]);
/// s.solve();
/// // A trivially satisfiable instance needs no conflicts.
/// assert_eq!(s.stats().conflicts, 0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Branching decisions made.
    pub decisions: u64,
    /// Literals dequeued by unit propagation.
    pub propagations: u64,
    /// Conflicts encountered (= learnt clauses, counting units).
    pub conflicts: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Total literals in learnt clauses (after minimisation).
    pub learnt_literals: u64,
    /// Learnt clauses removed by database reduction.
    pub deleted_clauses: u64,
    /// `solve` / `solve_with` invocations.
    pub solve_calls: u64,
    /// Learnt clauses still live at the start of each `solve` call after
    /// the first, summed over calls — the cross-call clause-retention
    /// counter of incremental solving (0 for a solver solved at most once;
    /// grows when assumption probes inherit earlier probes' lemmas).
    pub reused_learnts: u64,
}

impl Stats {
    /// Fraction of learnt clauses that were carried into a later solve call
    /// (`reused_learnts` per learnt clause, capped at 1.0 per call). A
    /// from-scratch loop that discards its solver between probes scores 0.
    pub fn learnt_reuse_rate(&self) -> f64 {
        if self.conflicts == 0 {
            0.0
        } else {
            self.reused_learnts as f64 / self.conflicts as f64
        }
    }
}

impl std::ops::AddAssign<&Stats> for Stats {
    fn add_assign(&mut self, rhs: &Stats) {
        self.decisions += rhs.decisions;
        self.propagations += rhs.propagations;
        self.conflicts += rhs.conflicts;
        self.restarts += rhs.restarts;
        self.learnt_literals += rhs.learnt_literals;
        self.deleted_clauses += rhs.deleted_clauses;
        self.solve_calls += rhs.solve_calls;
        self.reused_learnts += rhs.reused_learnts;
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "decisions={} propagations={} conflicts={} restarts={} learnt_lits={} deleted={} solves={} reused_learnts={}",
            self.decisions,
            self.propagations,
            self.conflicts,
            self.restarts,
            self.learnt_literals,
            self.deleted_clauses,
            self.solve_calls,
            self.reused_learnts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let s = Stats::default();
        assert_eq!(s.decisions, 0);
        assert_eq!(s.conflicts, 0);
    }

    #[test]
    fn display_is_nonempty() {
        let s = Stats::default();
        assert!(format!("{s}").contains("conflicts=0"));
        assert!(format!("{s}").contains("reused_learnts=0"));
    }

    #[test]
    fn add_assign_sums_fieldwise() {
        let mut a = Stats {
            conflicts: 3,
            solve_calls: 1,
            ..Stats::default()
        };
        let b = Stats {
            conflicts: 4,
            solve_calls: 2,
            reused_learnts: 5,
            ..Stats::default()
        };
        a += &b;
        assert_eq!(a.conflicts, 7);
        assert_eq!(a.solve_calls, 3);
        assert_eq!(a.reused_learnts, 5);
    }

    #[test]
    fn reuse_rate_handles_zero_conflicts() {
        assert_eq!(Stats::default().learnt_reuse_rate(), 0.0);
        let s = Stats {
            conflicts: 4,
            reused_learnts: 2,
            ..Stats::default()
        };
        assert!((s.learnt_reuse_rate() - 0.5).abs() < 1e-12);
    }
}
