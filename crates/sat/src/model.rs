//! Satisfying assignments returned by the solver.

use crate::types::{LBool, Lit, Var};

/// An immutable snapshot of a satisfying assignment.
///
/// Variables that were irrelevant to satisfiability may be unassigned in the
/// solver; the model maps those to `false`, which is always safe for the
/// encodings in this workspace (all constraints are clauses, and a clause
/// satisfied under a partial assignment stays satisfied under any
/// completion of it).
///
/// # Examples
///
/// ```
/// use etcs_sat::{Solver, SatResult};
/// let mut s = Solver::new();
/// let a = s.new_var();
/// s.add_clause([a.positive()]);
/// let SatResult::Sat(model) = s.solve() else { unreachable!() };
/// assert!(model.var_is_true(a));
/// assert!(!model.lit_is_true(a.negative()));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Model {
    values: Vec<bool>,
}

impl Model {
    /// Builds a model from the solver's internal assignment table,
    /// completing unassigned variables with `false`.
    pub(crate) fn from_assignments(assigns: &[LBool]) -> Self {
        Model {
            values: assigns.iter().map(|v| matches!(v, LBool::True)).collect(),
        }
    }

    /// Builds a model directly from per-variable truth values (used by
    /// tests and by external tooling that replays stored models).
    pub fn from_values(values: Vec<bool>) -> Self {
        Model { values }
    }

    /// Number of variables covered by the model.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when the model covers no variables.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Truth value of a variable.
    ///
    /// # Panics
    ///
    /// Panics if the variable is outside the model.
    pub fn var_is_true(&self, v: Var) -> bool {
        self.values[v.index()]
    }

    /// Truth value of a literal.
    ///
    /// # Panics
    ///
    /// Panics if the literal's variable is outside the model.
    pub fn lit_is_true(&self, l: Lit) -> bool {
        self.values[l.var().index()] == l.is_positive()
    }

    /// Iterates over `(Var, bool)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (Var, bool)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(|(i, &b)| (Var::from_index(i), b))
    }

    /// Evaluates a clause (a disjunction) under this model.
    pub fn satisfies_clause(&self, clause: &[Lit]) -> bool {
        clause.iter().any(|&l| self.lit_is_true(l))
    }

    /// Number of `true` literals among the given literals (used by the
    /// MaxSAT layer to evaluate objective values).
    pub fn count_true<'a>(&self, lits: impl IntoIterator<Item = &'a Lit>) -> usize {
        lits.into_iter().filter(|&&l| self.lit_is_true(l)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undef_completes_to_false() {
        let m = Model::from_assignments(&[LBool::True, LBool::Undef, LBool::False]);
        assert!(m.var_is_true(Var::from_index(0)));
        assert!(!m.var_is_true(Var::from_index(1)));
        assert!(!m.var_is_true(Var::from_index(2)));
    }

    #[test]
    fn literal_polarity() {
        let m = Model::from_values(vec![true, false]);
        let a = Var::from_index(0);
        let b = Var::from_index(1);
        assert!(m.lit_is_true(a.positive()));
        assert!(!m.lit_is_true(a.negative()));
        assert!(!m.lit_is_true(b.positive()));
        assert!(m.lit_is_true(b.negative()));
    }

    #[test]
    fn clause_evaluation() {
        let m = Model::from_values(vec![true, false]);
        let a = Var::from_index(0).positive();
        let b = Var::from_index(1).positive();
        assert!(m.satisfies_clause(&[a, b]));
        assert!(m.satisfies_clause(&[!b]));
        assert!(!m.satisfies_clause(&[b]));
        assert!(!m.satisfies_clause(&[]));
    }

    #[test]
    fn count_true_counts() {
        let m = Model::from_values(vec![true, true, false]);
        let lits: Vec<Lit> = (0..3).map(|i| Var::from_index(i).positive()).collect();
        assert_eq!(m.count_true(&lits), 2);
    }

    #[test]
    fn iter_in_order() {
        let m = Model::from_values(vec![false, true]);
        let collected: Vec<(usize, bool)> = m.iter().map(|(v, b)| (v.index(), b)).collect();
        assert_eq!(collected, vec![(0, false), (1, true)]);
    }
}
