//! # etcs-sat — the solving substrate of the ETCS Level 3 reproduction
//!
//! A from-scratch, dependency-free CDCL SAT solver together with the
//! encoding and optimisation layers the ETCS Level 3 methodology of
//! Wille et al. (DATE 2021) requires:
//!
//! * [`Solver`] — conflict-driven clause learning with two-watched-literal
//!   propagation, VSIDS + phase saving, Luby restarts, LBD-based clause
//!   database reduction, incremental solving under assumptions and
//!   unsat-core extraction, plus certified SatELite-style preprocessing
//!   ([`Solver::preprocess`], [`PreprocessConfig`]) with DRAT-logged
//!   derivations and model reconstruction for eliminated variables;
//! * [`parallel`] — an in-process clause-sharing portfolio
//!   ([`Solver::set_portfolio`], [`PortfolioConfig`]): N diversified CDCL
//!   workers race one formula, exchanging small-LBD learnt clauses, with
//!   first-finisher-wins cancellation of the siblings;
//! * [`Formula`] / [`CnfSink`] — inspectable CNF construction with Tseitin
//!   gate helpers;
//! * [`card`] — arc-consistent cardinality encodings (pairwise, sequential
//!   counter, [`Totalizer`]);
//! * [`Objective`] / [`maxsat`] — exact linear and lexicographic
//!   minimisation via assumable unary bounds;
//! * [`proof`] — DRAT proof logging ([`ProofSink`], [`DratProof`]) and an
//!   independent backward RUP checker ([`check_drat`]), so UNSAT verdicts
//!   can be certified without trusting the solver;
//! * [`parse_dimacs`] / [`write_dimacs`] — DIMACS interoperability.
//!
//! The paper's reference implementation drives Z3; this crate substitutes an
//! exact solver with the same observable behaviour on the paper's formulas
//! (SAT/UNSAT verdicts and optimal objective values are identical; only
//! wall-clock performance differs).
//!
//! ## Quick start
//!
//! ```
//! use etcs_sat::{Solver, SatResult, CnfSink, Objective, maxsat};
//!
//! // Minimise the number of selected items subject to "select a or b".
//! let mut solver = Solver::new();
//! let a = CnfSink::new_var(&mut solver).positive();
//! let b = CnfSink::new_var(&mut solver).positive();
//! solver.add_clause([a, b]);
//! let objective = Objective::count_of([a, b]);
//! let outcome = maxsat::minimize(
//!     &mut solver,
//!     &objective,
//!     &[],
//!     maxsat::Strategy::LinearSatUnsat,
//! );
//! let optimum = outcome.optimal().expect("satisfiable");
//! assert_eq!(optimum.cost, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod card;
mod clause;
mod cnf;
mod dimacs;
mod interrupt;
pub mod maxsat;
mod model;
mod pb;
pub mod proof;
mod solver;
mod stats;
mod types;

pub use card::Totalizer;
pub use cnf::{CnfSink, Formula};
pub use dimacs::{parse_dimacs, write_dimacs, ParseDimacsError};
pub use interrupt::{Interrupt, InterruptReason};
pub use maxsat::{
    minimize, minimize_lex, minimize_lex_full, BudgetExhausted, LexOptimumResult, OptimizeOutcome,
    OptimumResult, Strategy,
};
pub use model::Model;
pub use pb::{Objective, ObjectiveCounter};
pub use proof::{check_drat, CheckOutcome, DratProof, ProofError, ProofSink, ProofStep};
pub use solver::parallel;
pub use solver::{
    luby, PortfolioConfig, PortfolioStats, PreprocessConfig, PreprocessStats, SatResult, Solver,
    SolverConfig,
};
pub use stats::Stats;
pub use types::{LBool, Lit, Var};
