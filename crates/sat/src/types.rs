//! Core identifier types: Boolean [`Var`]iables and signed [`Lit`]erals.
//!
//! A [`Var`] is a dense index (`0..num_vars`); a [`Lit`] packs a variable and
//! a sign into a single `u32` so that `lit.index()` can be used directly to
//! address watch lists and assignment tables.

use std::fmt;
use std::ops::Not;

/// A Boolean variable, identified by a dense index.
///
/// Variables are created by [`crate::Solver::new_var`] (or by the formula
/// builders in [`Formula`](crate::Formula)) and are meaningless outside the solver that
/// created them.
///
/// # Examples
///
/// ```
/// use etcs_sat::{Solver, Lit};
/// let mut s = Solver::new();
/// let v = s.new_var();
/// let positive: Lit = v.positive();
/// assert_eq!(positive.var(), v);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Creates a variable from its dense index.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        Var(index as u32)
    }

    /// The dense index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    #[inline]
    pub fn positive(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// The negative literal of this variable.
    #[inline]
    pub fn negative(self) -> Lit {
        Lit((self.0 << 1) | 1)
    }

    /// The literal of this variable with the given sign (`true` = positive).
    #[inline]
    pub fn lit(self, positive: bool) -> Lit {
        if positive {
            self.positive()
        } else {
            self.negative()
        }
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a [`Var`] together with a sign.
///
/// The lowest bit encodes the sign (`0` = positive, `1` = negated), the
/// remaining bits the variable index. Negation is therefore a single XOR.
///
/// # Examples
///
/// ```
/// use etcs_sat::Var;
/// let v = Var::from_index(3);
/// assert_eq!(!v.positive(), v.negative());
/// assert!(v.positive().is_positive());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// Reconstructs a literal from the packed code returned by [`Lit::code`].
    #[inline]
    pub fn from_code(code: u32) -> Self {
        Lit(code)
    }

    /// The packed code: `var_index * 2 + (negated as u32)`.
    #[inline]
    pub fn code(self) -> u32 {
        self.0
    }

    /// The underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Dense index usable for watch-list and table addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// `true` if this literal is the positive phase of its variable.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// `true` if this literal is the negated phase of its variable.
    #[inline]
    pub fn is_negative(self) -> bool {
        self.0 & 1 == 1
    }
}

impl Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl From<Var> for Lit {
    #[inline]
    fn from(v: Var) -> Lit {
        v.positive()
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "¬x{}", self.0 >> 1)
        } else {
            write!(f, "x{}", self.0 >> 1)
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Tri-state assignment value used inside the solver and in [`crate::Model`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, Default)]
pub enum LBool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Not assigned.
    #[default]
    Undef,
}

impl LBool {
    /// Converts a `bool` into the corresponding defined value.
    #[inline]
    pub fn from_bool(b: bool) -> Self {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// `Some(bool)` if defined, `None` if [`LBool::Undef`].
    #[inline]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            LBool::True => Some(true),
            LBool::False => Some(false),
            LBool::Undef => None,
        }
    }

    /// Logical negation; `Undef` stays `Undef`.
    #[inline]
    pub fn negate(self) -> Self {
        match self {
            LBool::True => LBool::False,
            LBool::False => LBool::True,
            LBool::Undef => LBool::Undef,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_literal_roundtrip() {
        let v = Var::from_index(7);
        assert_eq!(v.index(), 7);
        assert_eq!(v.positive().var(), v);
        assert_eq!(v.negative().var(), v);
        assert!(v.positive().is_positive());
        assert!(v.negative().is_negative());
    }

    #[test]
    fn negation_is_involution() {
        let v = Var::from_index(12);
        assert_eq!(!!v.positive(), v.positive());
        assert_eq!(!v.positive(), v.negative());
        assert_eq!(!v.negative(), v.positive());
    }

    #[test]
    fn lit_code_roundtrip() {
        for i in 0..64u32 {
            let l = Lit::from_code(i);
            assert_eq!(Lit::from_code(l.code()), l);
        }
    }

    #[test]
    fn lit_index_distinct_per_phase() {
        let v = Var::from_index(3);
        assert_ne!(v.positive().index(), v.negative().index());
    }

    #[test]
    fn var_lit_helper_matches_phases() {
        let v = Var::from_index(5);
        assert_eq!(v.lit(true), v.positive());
        assert_eq!(v.lit(false), v.negative());
    }

    #[test]
    fn lbool_negate() {
        assert_eq!(LBool::True.negate(), LBool::False);
        assert_eq!(LBool::False.negate(), LBool::True);
        assert_eq!(LBool::Undef.negate(), LBool::Undef);
    }

    #[test]
    fn lbool_bool_conversions() {
        assert_eq!(LBool::from_bool(true), LBool::True);
        assert_eq!(LBool::from_bool(false), LBool::False);
        assert_eq!(LBool::True.to_bool(), Some(true));
        assert_eq!(LBool::False.to_bool(), Some(false));
        assert_eq!(LBool::Undef.to_bool(), None);
    }

    #[test]
    fn display_formats() {
        let v = Var::from_index(4);
        assert_eq!(format!("{}", v.positive()), "x4");
        assert_eq!(format!("{}", v.negative()), "¬x4");
        assert_eq!(format!("{v}"), "x4");
    }
}
