//! Linear pseudo-Boolean objectives.
//!
//! The ETCS design tasks minimise plain sums of literals (`Σ border_v`,
//! `Σ ¬done^t`), i.e. unit weights, but the optimiser accepts general small
//! integer weights: a weighted sum is lowered onto a [`Totalizer`] by
//! repeating each literal `weight` times, which is exact and keeps the
//! encoding arc-consistent. This is quadratic in the weight magnitude and
//! documented as such — it is the right trade-off for the weight ranges
//! occurring here (1..=a few dozen).

use crate::card::Totalizer;
use crate::cnf::CnfSink;
use crate::model::Model;
use crate::types::Lit;

/// A linear objective `minimise Σ wᵢ · [ℓᵢ is true]`.
///
/// # Examples
///
/// ```
/// use etcs_sat::{Objective, Formula, CnfSink};
/// let mut f = Formula::new();
/// let a = f.new_var().positive();
/// let b = f.new_var().positive();
/// let obj = Objective::new(vec![(a, 1), (b, 3)]);
/// assert_eq!(obj.max_cost(), 4);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Objective {
    terms: Vec<(Lit, u64)>,
}

impl Objective {
    /// Creates an objective from `(literal, weight)` terms.
    ///
    /// Zero-weight terms are dropped.
    pub fn new(terms: Vec<(Lit, u64)>) -> Self {
        Objective {
            terms: terms.into_iter().filter(|&(_, w)| w > 0).collect(),
        }
    }

    /// Creates a unit-weight objective over the given cost literals.
    pub fn count_of(lits: impl IntoIterator<Item = Lit>) -> Self {
        Objective {
            terms: lits.into_iter().map(|l| (l, 1)).collect(),
        }
    }

    /// The `(literal, weight)` terms.
    pub fn terms(&self) -> &[(Lit, u64)] {
        &self.terms
    }

    /// `true` when the objective has no terms (cost is constantly 0).
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Upper bound on the cost (all cost literals true).
    pub fn max_cost(&self) -> u64 {
        self.terms.iter().map(|&(_, w)| w).sum()
    }

    /// Cost of a model.
    pub fn eval(&self, model: &Model) -> u64 {
        self.terms
            .iter()
            .filter(|&&(l, _)| model.lit_is_true(l))
            .map(|&(_, w)| w)
            .sum()
    }

    /// Lowers the objective onto a unary counter in `sink`.
    ///
    /// The returned [`ObjectiveCounter`] exposes assumable upper-bound
    /// literals used by the MaxSAT search.
    pub fn lower<S: CnfSink + ?Sized>(&self, sink: &mut S) -> ObjectiveCounter {
        let mut expanded: Vec<Lit> = Vec::with_capacity(self.max_cost() as usize);
        for &(l, w) in &self.terms {
            for _ in 0..w {
                expanded.push(l);
            }
        }
        ObjectiveCounter {
            totalizer: Totalizer::build(sink, expanded),
        }
    }
}

impl FromIterator<(Lit, u64)> for Objective {
    fn from_iter<I: IntoIterator<Item = (Lit, u64)>>(iter: I) -> Self {
        Objective::new(iter.into_iter().collect())
    }
}

/// A unary counter of an [`Objective`]'s cost, embedded in a formula or
/// solver, with assumable bound literals.
#[derive(Clone, Debug)]
pub struct ObjectiveCounter {
    totalizer: Totalizer,
}

impl ObjectiveCounter {
    /// Literal asserting `cost ≤ bound`; `None` when trivially true.
    pub fn at_most(&self, bound: u64) -> Option<Lit> {
        self.totalizer.at_most(bound as usize)
    }

    /// The maximum representable cost.
    pub fn capacity(&self) -> u64 {
        self.totalizer.inputs().len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Formula;
    use crate::solver::{SatResult, Solver};

    #[test]
    fn eval_weighted() {
        let mut f = Formula::new();
        let a = f.new_var().positive();
        let b = f.new_var().positive();
        let obj = Objective::new(vec![(a, 2), (b, 5)]);
        let m = Model::from_values(vec![true, false]);
        assert_eq!(obj.eval(&m), 2);
        let m2 = Model::from_values(vec![true, true]);
        assert_eq!(obj.eval(&m2), 7);
    }

    #[test]
    fn zero_weights_dropped() {
        let mut f = Formula::new();
        let a = f.new_var().positive();
        let obj = Objective::new(vec![(a, 0)]);
        assert!(obj.is_empty());
        assert_eq!(obj.max_cost(), 0);
    }

    #[test]
    fn lowered_counter_bounds_weighted_cost() {
        // cost(a)=2, cost(b)=3; require cost <= 2 ⇒ b must be false.
        let mut s = Solver::new();
        let a = crate::cnf::CnfSink::new_var(&mut s).positive();
        let b = crate::cnf::CnfSink::new_var(&mut s).positive();
        let obj = Objective::new(vec![(a, 2), (b, 3)]);
        let counter = obj.lower(&mut s);
        let bound = counter.at_most(2).expect("bound exists");
        s.add_clause([a, b]); // at least one cost literal true
        match s.solve_with(&[bound]) {
            SatResult::Sat(m) => {
                assert!(obj.eval(&m) <= 2);
                assert!(!m.lit_is_true(b));
            }
            other => panic!("expected sat: {other:?}"),
        }
    }

    #[test]
    fn count_of_builds_unit_weights() {
        let mut f = Formula::new();
        let lits: Vec<Lit> = (0..3).map(|_| f.new_var().positive()).collect();
        let obj = Objective::count_of(lits.clone());
        assert_eq!(obj.max_cost(), 3);
        assert!(obj.terms().iter().all(|&(_, w)| w == 1));
    }

    #[test]
    fn from_iterator_collects() {
        let mut f = Formula::new();
        let a = f.new_var().positive();
        let obj: Objective = [(a, 4u64)].into_iter().collect();
        assert_eq!(obj.max_cost(), 4);
    }

    #[test]
    fn counter_capacity_is_total_weight() {
        let mut f = Formula::new();
        let a = f.new_var().positive();
        let b = f.new_var().positive();
        let obj = Objective::new(vec![(a, 2), (b, 3)]);
        let c = obj.lower(&mut f);
        assert_eq!(c.capacity(), 5);
        assert!(c.at_most(5).is_none()); // trivially true
        assert!(c.at_most(4).is_some());
    }
}
