//! Exact MaxSAT-style minimisation on top of the incremental CDCL solver.
//!
//! The ETCS design tasks need two optimisation modes:
//!
//! * a single linear objective (`min Σ border_v` for layout generation),
//! * a lexicographic pair (`min Σ ¬done^t`, then `min Σ border_v` for
//!   schedule optimisation).
//!
//! Both are solved by iteratively tightening an assumable unary bound built
//! by [`Objective::lower`]: because bounds are passed as *assumptions*, an
//! UNSAT answer at a candidate bound leaves the solver reusable for the next
//! probe and for subsequent objectives.

use crate::model::Model;
use crate::pb::{Objective, ObjectiveCounter};
use crate::solver::{SatResult, Solver};
use crate::types::Lit;

/// Search strategy for the minimisation loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Start from the first model's cost and repeatedly ask for `cost - 1`.
    /// Each SAT step produces a strictly better model; the final UNSAT step
    /// proves optimality. Usually best when good models are found early.
    #[default]
    LinearSatUnsat,
    /// Binary search between 0 and the first model's cost. Fewer solver
    /// calls on instances whose optimum is far below the first model.
    BinarySearch,
}

/// Result of a successful minimisation.
#[derive(Clone, Debug, PartialEq)]
pub struct OptimumResult {
    /// An optimal model.
    pub model: Model,
    /// The proven optimal cost.
    pub cost: u64,
    /// Number of solver calls spent (including the initial one).
    pub solver_calls: usize,
}

/// Outcome of [`minimize`] / [`minimize_lex`].
#[derive(Clone, Debug, PartialEq)]
pub enum OptimizeOutcome {
    /// Optimum found and proven.
    Optimal(OptimumResult),
    /// The hard constraints are unsatisfiable.
    Unsat,
    /// The conflict budget ran out; `best` holds the best model found so
    /// far, if any (not proven optimal).
    Unknown {
        /// Best (unproven) result so far.
        best: Option<OptimumResult>,
    },
}

impl OptimizeOutcome {
    /// The optimal result if one was proven.
    pub fn optimal(&self) -> Option<&OptimumResult> {
        match self {
            OptimizeOutcome::Optimal(r) => Some(r),
            _ => None,
        }
    }

    /// `true` if the hard constraints were proven unsatisfiable.
    pub fn is_unsat(&self) -> bool {
        matches!(self, OptimizeOutcome::Unsat)
    }
}

/// Minimises `objective` subject to the clauses already in `solver` and the
/// extra `assumptions` (which are kept active during the whole search).
///
/// The solver is left usable afterwards; the optimum is *not* asserted as a
/// hard constraint (use the returned cost with
/// [`Objective::lower`]-derived bounds if you need to pin it, as
/// [`minimize_lex`] does).
pub fn minimize(
    solver: &mut Solver,
    objective: &Objective,
    assumptions: &[Lit],
    strategy: Strategy,
) -> OptimizeOutcome {
    let mut calls = 0usize;
    let first = {
        calls += 1;
        solver.solve_with(assumptions)
    };
    let mut best = match first {
        SatResult::Sat(m) => {
            let cost = objective.eval(&m);
            OptimumResult {
                model: m,
                cost,
                solver_calls: calls,
            }
        }
        SatResult::Unsat { .. } => return OptimizeOutcome::Unsat,
        SatResult::Unknown => return OptimizeOutcome::Unknown { best: None },
    };
    if objective.is_empty() || best.cost == 0 {
        best.solver_calls = calls;
        return OptimizeOutcome::Optimal(best);
    }

    let counter = objective.lower(solver);
    match strategy {
        Strategy::LinearSatUnsat => loop {
            let target = best.cost - 1;
            let Some(bound) = counter.at_most(target) else {
                // target >= capacity would be trivially true; cannot happen
                // here because target < best.cost <= capacity.
                unreachable!("bound below a witnessed cost always exists");
            };
            let mut assume: Vec<Lit> = assumptions.to_vec();
            assume.push(bound);
            calls += 1;
            match solver.solve_with(&assume) {
                SatResult::Sat(m) => {
                    let cost = objective.eval(&m);
                    debug_assert!(cost <= target, "bounded solve exceeded bound");
                    best = OptimumResult {
                        model: m,
                        cost,
                        solver_calls: calls,
                    };
                    if cost == 0 {
                        return OptimizeOutcome::Optimal(best);
                    }
                }
                SatResult::Unsat { .. } => {
                    best.solver_calls = calls;
                    return OptimizeOutcome::Optimal(best);
                }
                SatResult::Unknown => {
                    best.solver_calls = calls;
                    return OptimizeOutcome::Unknown { best: Some(best) };
                }
            }
        },
        Strategy::BinarySearch => {
            let mut lo = 0u64; // smallest cost not yet excluded
            while lo < best.cost {
                let mid = lo + (best.cost - lo) / 2;
                let bound = counter
                    .at_most(mid)
                    .expect("mid < best.cost <= capacity, bound exists");
                let mut assume: Vec<Lit> = assumptions.to_vec();
                assume.push(bound);
                calls += 1;
                match solver.solve_with(&assume) {
                    SatResult::Sat(m) => {
                        let cost = objective.eval(&m);
                        debug_assert!(cost <= mid);
                        best = OptimumResult {
                            model: m,
                            cost,
                            solver_calls: calls,
                        };
                    }
                    SatResult::Unsat { .. } => {
                        lo = mid + 1;
                    }
                    SatResult::Unknown => {
                        best.solver_calls = calls;
                        return OptimizeOutcome::Unknown { best: Some(best) };
                    }
                }
            }
            best.solver_calls = calls;
            OptimizeOutcome::Optimal(best)
        }
    }
}

/// Result of a lexicographic minimisation: one cost per objective.
#[derive(Clone, Debug, PartialEq)]
pub struct LexOptimumResult {
    /// A model optimal for the lexicographic ordering.
    pub model: Model,
    /// Proven optimal cost of each objective, in order.
    pub costs: Vec<u64>,
    /// Total solver calls across all stages.
    pub solver_calls: usize,
}

/// Lexicographically minimises `objectives[0]`, then `objectives[1]` subject
/// to the first being at its optimum, and so on.
///
/// Used by the ETCS schedule-optimisation task: time steps first, VSS
/// borders second.
pub fn minimize_lex(
    solver: &mut Solver,
    objectives: &[Objective],
    strategy: Strategy,
) -> OptimizeOutcome {
    let mut pinned: Vec<Lit> = Vec::new();
    let mut costs: Vec<u64> = Vec::new();
    let mut calls = 0usize;
    let mut model: Option<Model> = None;

    for obj in objectives {
        match minimize(solver, obj, &pinned, strategy) {
            OptimizeOutcome::Optimal(r) => {
                calls += r.solver_calls;
                costs.push(r.cost);
                model = Some(r.model);
                // Pin this objective at its optimum for the later stages.
                if !obj.is_empty() && r.cost < obj.max_cost() {
                    let counter: ObjectiveCounter = obj.lower(solver);
                    if let Some(b) = counter.at_most(r.cost) {
                        pinned.push(b);
                    }
                }
            }
            OptimizeOutcome::Unsat => return OptimizeOutcome::Unsat,
            OptimizeOutcome::Unknown { best } => {
                return OptimizeOutcome::Unknown {
                    best: best.map(|mut r| {
                        r.solver_calls += calls;
                        r
                    }),
                }
            }
        }
    }

    match model {
        Some(model) => {
            // Represent the lexicographic result through OptimumResult of the
            // *last* objective; full per-objective costs are attached via
            // `LexOptimumResult` from `minimize_lex_full`.
            let cost = *costs.last().unwrap_or(&0);
            OptimizeOutcome::Optimal(OptimumResult {
                model,
                cost,
                solver_calls: calls,
            })
        }
        None => {
            // No objectives: plain satisfiability.
            calls += 1;
            match solver.solve() {
                SatResult::Sat(m) => OptimizeOutcome::Optimal(OptimumResult {
                    model: m,
                    cost: 0,
                    solver_calls: calls,
                }),
                SatResult::Unsat { .. } => OptimizeOutcome::Unsat,
                SatResult::Unknown => OptimizeOutcome::Unknown { best: None },
            }
        }
    }
}

/// Like [`minimize_lex`] but reports every stage's optimal cost.
pub fn minimize_lex_full(
    solver: &mut Solver,
    objectives: &[Objective],
    strategy: Strategy,
) -> Result<Option<LexOptimumResult>, BudgetExhausted> {
    let mut pinned: Vec<Lit> = Vec::new();
    let mut costs: Vec<u64> = Vec::new();
    let mut calls = 0usize;
    let mut model: Option<Model> = None;

    for obj in objectives {
        match minimize(solver, obj, &pinned, strategy) {
            OptimizeOutcome::Optimal(r) => {
                calls += r.solver_calls;
                costs.push(r.cost);
                model = Some(r.model);
                if !obj.is_empty() && r.cost < obj.max_cost() {
                    let counter = obj.lower(solver);
                    if let Some(b) = counter.at_most(r.cost) {
                        pinned.push(b);
                    }
                }
            }
            OptimizeOutcome::Unsat => return Ok(None),
            OptimizeOutcome::Unknown { .. } => return Err(BudgetExhausted),
        }
    }
    let model = match model {
        Some(m) => m,
        None => match solver.solve() {
            SatResult::Sat(m) => {
                calls += 1;
                m
            }
            SatResult::Unsat { .. } => return Ok(None),
            SatResult::Unknown => return Err(BudgetExhausted),
        },
    };
    Ok(Some(LexOptimumResult {
        model,
        costs,
        solver_calls: calls,
    }))
}

/// The conflict budget was exhausted before optimality could be proven.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BudgetExhausted;

impl std::fmt::Display for BudgetExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "conflict budget exhausted before proving optimality")
    }
}

impl std::error::Error for BudgetExhausted {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::CnfSink;

    /// min #true over 5 free vars with a hard "at least 2 true" ⇒ optimum 2.
    fn at_least_two_instance() -> (Solver, Objective) {
        let mut s = Solver::new();
        let xs: Vec<Lit> = (0..5)
            .map(|_| CnfSink::new_var(&mut s).positive())
            .collect();
        let t = crate::card::Totalizer::build(&mut s, xs.clone());
        let al = t.at_least(2).expect("bound exists");
        s.assert_true(al);
        (s, Objective::count_of(xs))
    }

    #[test]
    fn linear_finds_proven_optimum() {
        let (mut s, obj) = at_least_two_instance();
        match minimize(&mut s, &obj, &[], Strategy::LinearSatUnsat) {
            OptimizeOutcome::Optimal(r) => {
                assert_eq!(r.cost, 2);
                assert_eq!(obj.eval(&r.model), 2);
            }
            other => panic!("expected optimal: {other:?}"),
        }
    }

    #[test]
    fn binary_finds_same_optimum() {
        let (mut s, obj) = at_least_two_instance();
        match minimize(&mut s, &obj, &[], Strategy::BinarySearch) {
            OptimizeOutcome::Optimal(r) => assert_eq!(r.cost, 2),
            other => panic!("expected optimal: {other:?}"),
        }
    }

    #[test]
    fn unsat_hard_constraints_reported() {
        let mut s = Solver::new();
        let a = CnfSink::new_var(&mut s).positive();
        s.assert_true(a);
        s.assert_false(a);
        let obj = Objective::count_of([a]);
        assert!(minimize(&mut s, &obj, &[], Strategy::LinearSatUnsat).is_unsat());
    }

    #[test]
    fn zero_cost_short_circuits() {
        let mut s = Solver::new();
        let a = CnfSink::new_var(&mut s).positive();
        let b = CnfSink::new_var(&mut s).positive();
        s.add_clause([a, b]); // satisfiable with both cost lits false? no: a∨b
        let obj = Objective::count_of([]); // empty objective
        match minimize(&mut s, &obj, &[], Strategy::LinearSatUnsat) {
            OptimizeOutcome::Optimal(r) => assert_eq!(r.cost, 0),
            other => panic!("expected optimal: {other:?}"),
        }
    }

    #[test]
    fn weighted_objective_minimised() {
        // a ∨ b required; cost(a)=1, cost(b)=10 ⇒ choose a.
        let mut s = Solver::new();
        let a = CnfSink::new_var(&mut s).positive();
        let b = CnfSink::new_var(&mut s).positive();
        s.add_clause([a, b]);
        let obj = Objective::new(vec![(a, 1), (b, 10)]);
        match minimize(&mut s, &obj, &[], Strategy::LinearSatUnsat) {
            OptimizeOutcome::Optimal(r) => {
                assert_eq!(r.cost, 1);
                assert!(r.model.lit_is_true(a));
                assert!(!r.model.lit_is_true(b));
            }
            other => panic!("expected optimal: {other:?}"),
        }
    }

    #[test]
    fn lexicographic_orders_objectives() {
        // Hard: a ∨ b. Obj1: min (#{a}) ⇒ a false. Obj2: min (#{¬b})
        // subject to a false ⇒ b true (forced anyway), cost2 = 0.
        let mut s = Solver::new();
        let a = CnfSink::new_var(&mut s).positive();
        let b = CnfSink::new_var(&mut s).positive();
        s.add_clause([a, b]);
        let o1 = Objective::count_of([a]);
        let o2 = Objective::count_of([!b]);
        let r = minimize_lex_full(&mut s, &[o1, o2], Strategy::LinearSatUnsat)
            .expect("budget unlimited")
            .expect("satisfiable");
        assert_eq!(r.costs, vec![0, 0]);
        assert!(!r.model.lit_is_true(a));
        assert!(r.model.lit_is_true(b));
    }

    #[test]
    fn lexicographic_pins_first_objective() {
        // 3 vars, hard: at least 2 true. Obj1: min count(x0,x1,x2) ⇒ 2.
        // Obj2: min count(x0) ⇒ with cost1 pinned at 2, x0 can be false.
        let mut s = Solver::new();
        let xs: Vec<Lit> = (0..3)
            .map(|_| CnfSink::new_var(&mut s).positive())
            .collect();
        let t = crate::card::Totalizer::build(&mut s, xs.clone());
        s.assert_true(t.at_least(2).expect("bound"));
        let o1 = Objective::count_of(xs.clone());
        let o2 = Objective::count_of([xs[0]]);
        let r = minimize_lex_full(&mut s, &[o1, o2], Strategy::LinearSatUnsat)
            .expect("budget unlimited")
            .expect("satisfiable");
        assert_eq!(r.costs, vec![2, 0]);
        assert!(!r.model.lit_is_true(xs[0]));
        assert_eq!(r.model.count_true(&xs), 2);
    }

    #[test]
    fn lex_unsat_propagates() {
        let mut s = Solver::new();
        let a = CnfSink::new_var(&mut s).positive();
        s.assert_true(a);
        s.assert_false(a);
        let o = Objective::count_of([a]);
        assert!(minimize_lex(&mut s, &[o], Strategy::LinearSatUnsat).is_unsat());
    }

    #[test]
    fn solver_reusable_after_minimize() {
        let (mut s, obj) = at_least_two_instance();
        let _ = minimize(&mut s, &obj, &[], Strategy::LinearSatUnsat);
        // The optimum was probed with assumptions only; the base formula is
        // still satisfiable with any count >= 2.
        assert!(s.solve().is_sat());
    }
}
