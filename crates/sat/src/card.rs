//! Cardinality constraint encodings.
//!
//! Three encodings are provided, trading clause count against propagation
//! strength:
//!
//! * pairwise at-most-one (via [`CnfSink::at_most_one_pairwise`]),
//! * the sequential-counter encoding of Sinz (2005) for `≤ k`,
//! * the totalizer of Bailleux & Boutry (2003), whose unary output allows a
//!   MaxSAT loop to tighten a bound incrementally with assumptions.
//!
//! All encodings are arc-consistent: unit propagation alone detects any
//! violated bound.

// Index-coupled loops over parallel tables are intentional here.
#![allow(clippy::needless_range_loop)]

use crate::cnf::CnfSink;
use crate::types::Lit;

/// Sequential (commander-free, ladder) at-most-one over `lits`.
///
/// Linear in the number of literals (vs. quadratic pairwise); introduces
/// `n-1` auxiliary variables.
pub fn at_most_one_sequential<S: CnfSink + ?Sized>(sink: &mut S, lits: &[Lit]) {
    if lits.len() <= 4 {
        sink.at_most_one_pairwise(lits);
        return;
    }
    // s_i = "some literal among lits[..=i] is true"
    let mut prev = lits[0];
    for i in 1..lits.len() {
        let s = sink.new_var().positive();
        sink.implies(prev, s); // carry the ladder
        sink.implies(lits[i], s); // current literal raises it too
        sink.add_clause_from(&[!prev, !lits[i]]); // prev set forbids current
        prev = s;
    }
}

/// Sequential-counter encoding of `Σ lits ≤ k` (Sinz 2005).
///
/// Uses `n·k` auxiliary variables and `O(n·k)` clauses.
///
/// # Panics
///
/// Panics if `k == 0`; encode that case by asserting every literal false
/// instead (cheaper and clearer at the call site).
pub fn at_most_k_sequential<S: CnfSink + ?Sized>(sink: &mut S, lits: &[Lit], k: usize) {
    assert!(k >= 1, "use assert_false per literal for k = 0");
    let n = lits.len();
    if n <= k {
        return; // trivially satisfied
    }
    // r[i][j] = "at least j+1 of lits[..=i] are true"
    let mut r: Vec<Vec<Lit>> = Vec::with_capacity(n);
    for i in 0..n {
        let row: Vec<Lit> = (0..k.min(i + 1))
            .map(|_| sink.new_var().positive())
            .collect();
        r.push(row);
    }
    for i in 0..n {
        // lits[i] → r[i][0]
        sink.implies(lits[i], r[i][0]);
        if i > 0 {
            for j in 0..r[i - 1].len() {
                // r[i-1][j] → r[i][j]
                sink.implies(r[i - 1][j], r[i][j]);
            }
            for j in 0..r[i - 1].len().min(k - 1) {
                // lits[i] ∧ r[i-1][j] → r[i][j+1]
                sink.implies2(lits[i], r[i - 1][j], r[i][j + 1]);
            }
            // Overflow: lits[i] ∧ r[i-1][k-1] → ⊥
            if r[i - 1].len() == k {
                sink.add_clause_from(&[!lits[i], !r[i - 1][k - 1]]);
            }
        }
    }
}

/// Totalizer tree over a set of input literals (Bailleux & Boutry 2003).
///
/// After construction, `outputs()[i]` is true **iff** at least `i + 1` of
/// the inputs are true (both implication directions are encoded). A bound
/// `Σ inputs ≤ b` is therefore the single literal `!outputs()[b]`, which the
/// MaxSAT layer passes as an assumption and tightens monotonically.
///
/// # Examples
///
/// ```
/// use etcs_sat::{Solver, Totalizer, SatResult, CnfSink};
/// let mut s = Solver::new();
/// let xs: Vec<_> = (0..4).map(|_| CnfSink::new_var(&mut s).positive()).collect();
/// let tot = Totalizer::build(&mut s, xs.clone());
/// // Require at least 2 and at most 3 of the inputs:
/// s.assert_true(tot.at_least(2).unwrap());
/// s.assert_true(tot.at_most(3).unwrap());
/// let SatResult::Sat(m) = s.solve() else { unreachable!() };
/// let n = m.count_true(&xs);
/// assert!((2..=3).contains(&n));
/// ```
#[derive(Clone, Debug)]
pub struct Totalizer {
    inputs: Vec<Lit>,
    outputs: Vec<Lit>,
}

impl Totalizer {
    /// Builds the totalizer tree, emitting its clauses into `sink`.
    pub fn build<S: CnfSink + ?Sized>(sink: &mut S, inputs: Vec<Lit>) -> Self {
        let outputs = Self::build_tree(sink, &inputs);
        Totalizer { inputs, outputs }
    }

    fn build_tree<S: CnfSink + ?Sized>(sink: &mut S, lits: &[Lit]) -> Vec<Lit> {
        match lits.len() {
            0 => Vec::new(),
            1 => vec![lits[0]],
            n => {
                let (l, r) = lits.split_at(n / 2);
                let left = Self::build_tree(sink, l);
                let right = Self::build_tree(sink, r);
                Self::merge(sink, &left, &right)
            }
        }
    }

    /// Merges two sorted unary numbers `a` and `b` into a fresh sorted unary
    /// number of length `|a| + |b|`.
    fn merge<S: CnfSink + ?Sized>(sink: &mut S, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        let p = a.len();
        let q = b.len();
        let out: Vec<Lit> = (0..p + q).map(|_| sink.new_var().positive()).collect();
        // Forward: i trues on the left and j trues on the right force
        // out[i + j - 1] ("at least i + j").
        for i in 0..=p {
            for j in 0..=q {
                if i + j == 0 {
                    continue;
                }
                let mut clause = Vec::with_capacity(3);
                if i > 0 {
                    clause.push(!a[i - 1]);
                }
                if j > 0 {
                    clause.push(!b[j - 1]);
                }
                clause.push(out[i + j - 1]);
                sink.add_clause_from(&clause);
            }
        }
        // Backward: at most i on the left and at most j on the right force
        // ¬out[i + j] ("not ≥ i + j + 1").
        for i in 0..=p {
            for j in 0..=q {
                if i + j == p + q {
                    continue;
                }
                let mut clause = Vec::with_capacity(3);
                if i < p {
                    clause.push(a[i]);
                }
                if j < q {
                    clause.push(b[j]);
                }
                clause.push(!out[i + j]);
                sink.add_clause_from(&clause);
            }
        }
        out
    }

    /// The input literals being counted.
    pub fn inputs(&self) -> &[Lit] {
        &self.inputs
    }

    /// Sorted unary outputs: `outputs()[i]` ⟺ at least `i + 1` inputs true.
    pub fn outputs(&self) -> &[Lit] {
        &self.outputs
    }

    /// Literal asserting `Σ inputs ≤ bound`, or `None` if the bound is
    /// trivially satisfied (`bound >= inputs.len()`).
    pub fn at_most(&self, bound: usize) -> Option<Lit> {
        self.outputs.get(bound).map(|&l| !l)
    }

    /// Literal asserting `Σ inputs ≥ bound`, or `None` if `bound == 0`
    /// (trivially true) or `bound > inputs.len()` (unsatisfiable by any
    /// literal — callers must handle this case).
    pub fn at_least(&self, bound: usize) -> Option<Lit> {
        if bound == 0 {
            return None;
        }
        self.outputs.get(bound - 1).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Formula;
    use crate::solver::{SatResult, Solver};
    use crate::types::Var;

    /// Enumerates all assignments of `n` inputs and checks the constraint
    /// built by `enc` accepts exactly those with `pred(#true)`.
    fn exhaustive_check(
        n: usize,
        enc: impl Fn(&mut Formula, &[Lit]),
        pred: impl Fn(usize) -> bool,
    ) {
        for mask in 0..(1u32 << n) {
            let mut f = Formula::new();
            let lits: Vec<Lit> = (0..n).map(|_| f.new_var().positive()).collect();
            enc(&mut f, &lits);
            for (i, &l) in lits.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    f.assert_true(l);
                } else {
                    f.assert_false(l);
                }
            }
            let mut s = Solver::new();
            f.load_into(&mut s);
            let sat = s.solve().is_sat();
            let count = mask.count_ones() as usize;
            assert_eq!(
                sat,
                pred(count),
                "n={n} mask={mask:b} count={count}: encoder disagrees with predicate"
            );
        }
    }

    #[test]
    fn sequential_amo_exhaustive() {
        for n in 1..=7 {
            exhaustive_check(n, at_most_one_sequential, |c| c <= 1);
        }
    }

    #[test]
    fn sequential_atmost_k_exhaustive() {
        for n in 1..=6 {
            for k in 1..=n {
                exhaustive_check(n, |f, l| at_most_k_sequential(f, l, k), |c| c <= k);
            }
        }
    }

    #[test]
    fn totalizer_at_most_exhaustive() {
        for n in 1..=6 {
            for k in 0..=n {
                exhaustive_check(
                    n,
                    |f, l| {
                        let t = Totalizer::build(f, l.to_vec());
                        if let Some(b) = t.at_most(k) {
                            f.assert_true(b);
                        }
                    },
                    |c| c <= k,
                );
            }
        }
    }

    #[test]
    fn totalizer_at_least_exhaustive() {
        for n in 1..=6 {
            for k in 1..=n {
                exhaustive_check(
                    n,
                    |f, l| {
                        let t = Totalizer::build(f, l.to_vec());
                        if let Some(b) = t.at_least(k) {
                            f.assert_true(b);
                        }
                    },
                    |c| c >= k,
                );
            }
        }
    }

    #[test]
    fn totalizer_outputs_track_count_both_ways() {
        // Free inputs: outputs must equal the unary representation of the
        // number of true inputs in every model found.
        let mut s = Solver::new();
        let xs: Vec<Lit> = (0..5)
            .map(|_| crate::cnf::CnfSink::new_var(&mut s).positive())
            .collect();
        let t = Totalizer::build(&mut s, xs.clone());
        // Pin an arbitrary pattern.
        s.assert_true(xs[0]);
        s.assert_true(xs[3]);
        s.assert_false(xs[1]);
        s.assert_false(xs[2]);
        s.assert_false(xs[4]);
        let SatResult::Sat(m) = s.solve() else {
            panic!("expected sat")
        };
        let count = m.count_true(&xs);
        assert_eq!(count, 2);
        for (i, &o) in t.outputs().iter().enumerate() {
            assert_eq!(
                m.lit_is_true(o),
                i < count,
                "output {i} disagrees with count {count}"
            );
        }
    }

    #[test]
    fn totalizer_empty_and_singleton() {
        let mut f = Formula::new();
        let t = Totalizer::build(&mut f, Vec::new());
        assert!(t.outputs().is_empty());
        assert_eq!(t.at_most(0), None);

        let x = f.new_var().positive();
        let t1 = Totalizer::build(&mut f, vec![x]);
        assert_eq!(t1.outputs(), [x]);
        assert_eq!(t1.at_most(0), Some(!x));
        assert_eq!(t1.at_least(1), Some(x));
    }

    #[test]
    fn at_most_bound_is_assumable() {
        // Using the bound as an assumption keeps the solver reusable.
        let mut s = Solver::new();
        let xs: Vec<Lit> = (0..4)
            .map(|_| crate::cnf::CnfSink::new_var(&mut s).positive())
            .collect();
        for &x in &xs {
            s.assert_true(x);
        }
        let t = Totalizer::build(&mut s, xs);
        let b2 = t.at_most(2).expect("bound exists");
        assert!(s.solve_with(&[b2]).is_unsat());
        assert!(s.solve().is_sat());
    }

    #[test]
    #[should_panic(expected = "k = 0")]
    fn sequential_k0_panics() {
        let mut f = Formula::new();
        let l = f.new_var().positive();
        at_most_k_sequential(&mut f, &[l], 0);
    }

    #[test]
    fn amo_sequential_small_defers_to_pairwise() {
        // n <= 4 uses pairwise and must add no auxiliary variables.
        let mut f = Formula::new();
        let lits: Vec<Lit> = (0..3).map(|_| f.new_var().positive()).collect();
        let before = f.num_vars();
        at_most_one_sequential(&mut f, &lits);
        assert_eq!(f.num_vars(), before);
        let _ = Var::from_index(0);
    }
}
