//! Luby restart sequence.
//!
//! The solver restarts after `base * luby(i)` conflicts where `luby` is the
//! reluctant-doubling sequence 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 … of
//! Luby, Sinclair and Zuckerman, the theoretically optimal universal restart
//! strategy.

/// Returns the `i`-th element of the Luby sequence (`i >= 1`).
///
/// # Examples
///
/// ```
/// use etcs_sat::luby;
/// let prefix: Vec<u64> = (1..=15).map(luby).collect();
/// assert_eq!(prefix, [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
/// ```
///
/// # Panics
///
/// Panics if `i == 0`; the sequence is 1-indexed.
pub fn luby(i: u64) -> u64 {
    assert!(i >= 1, "luby sequence is 1-indexed");
    // Find the smallest k with 2^k - 1 >= i.
    let mut k = 1u32;
    while (1u64 << k) - 1 < i {
        k += 1;
    }
    let (mut i, mut k) = (i, k);
    // If i is exactly 2^k - 1 the value is 2^(k-1); otherwise recurse on the
    // tail of the current block.
    loop {
        if i == (1u64 << k) - 1 {
            return 1u64 << (k - 1);
        }
        i -= (1u64 << (k - 1)) - 1;
        k = {
            let mut k2 = 1u32;
            while (1u64 << k2) - 1 < i {
                k2 += 1;
            }
            k2
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_prefix() {
        let expected = [
            1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2,
            4, 8, 16,
        ];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(luby(i as u64 + 1), e, "mismatch at index {}", i + 1);
        }
    }

    #[test]
    fn powers_of_two_positions() {
        // Position 2^k - 1 carries value 2^(k-1).
        for k in 1..20u32 {
            assert_eq!(luby((1u64 << k) - 1), 1u64 << (k - 1));
        }
    }

    #[test]
    #[should_panic(expected = "1-indexed")]
    fn zero_panics() {
        luby(0);
    }
}
