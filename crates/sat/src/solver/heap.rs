//! Indexed binary max-heap ordering variables by VSIDS activity.

use crate::types::Var;

/// Max-heap over variables keyed by an external activity table.
///
/// The heap stores positions per variable so that `decrease`/`increase`
/// operations after activity bumps are `O(log n)`, and membership tests are
/// `O(1)`.
#[derive(Clone, Debug, Default)]
pub(crate) struct VarHeap {
    /// Heap array of variable indices.
    heap: Vec<u32>,
    /// `pos[v] == usize::MAX` when `v` is not in the heap.
    pos: Vec<usize>,
}

const ABSENT: usize = usize::MAX;

impl VarHeap {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Registers a new variable slot (initially absent from the heap).
    pub(crate) fn grow_to(&mut self, num_vars: usize) {
        self.pos.resize(num_vars, ABSENT);
    }

    #[inline]
    pub(crate) fn contains(&self, v: Var) -> bool {
        self.pos[v.index()] != ABSENT
    }

    /// `true` when no variable is queued. Only exercised by tests; the
    /// solver detects exhaustion via `pop_max` returning `None`.
    #[allow(dead_code)]
    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Inserts `v`; no-op if already present.
    pub(crate) fn insert(&mut self, v: Var, activity: &[f64]) {
        if self.contains(v) {
            return;
        }
        let i = self.heap.len();
        self.heap.push(v.0);
        self.pos[v.index()] = i;
        self.sift_up(i, activity);
    }

    /// Removes and returns the maximum-activity variable.
    pub(crate) fn pop_max(&mut self, activity: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().expect("heap non-empty");
        self.pos[top as usize] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(Var(top))
    }

    /// Restores heap order after `v`'s activity increased.
    pub(crate) fn update(&mut self, v: Var, activity: &[f64]) {
        let p = self.pos[v.index()];
        if p != ABSENT {
            self.sift_up(p, activity);
        }
    }

    /// Number of queued variables. Only exercised by tests.
    #[allow(dead_code)]
    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if activity[self.heap[i] as usize] <= activity[self.heap[parent] as usize] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len()
                && activity[self.heap[l] as usize] > activity[self.heap[best] as usize]
            {
                best = l;
            }
            if r < self.heap.len()
                && activity[self.heap[r] as usize] > activity[self.heap[best] as usize]
            {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    #[inline]
    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a] as usize] = a;
        self.pos[self.heap[b] as usize] = b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> Var {
        Var::from_index(i)
    }

    #[test]
    fn pops_in_activity_order() {
        let activity = vec![1.0, 5.0, 3.0, 4.0, 2.0];
        let mut h = VarHeap::new();
        h.grow_to(5);
        for i in 0..5 {
            h.insert(v(i), &activity);
        }
        let order: Vec<usize> =
            std::iter::from_fn(|| h.pop_max(&activity).map(Var::index)).collect();
        assert_eq!(order, vec![1, 3, 2, 4, 0]);
    }

    #[test]
    fn insert_is_idempotent() {
        let activity = vec![1.0, 2.0];
        let mut h = VarHeap::new();
        h.grow_to(2);
        h.insert(v(0), &activity);
        h.insert(v(0), &activity);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn update_after_bump_reorders() {
        let mut activity = vec![1.0, 2.0, 3.0];
        let mut h = VarHeap::new();
        h.grow_to(3);
        for i in 0..3 {
            h.insert(v(i), &activity);
        }
        activity[0] = 10.0;
        h.update(v(0), &activity);
        assert_eq!(h.pop_max(&activity), Some(v(0)));
    }

    #[test]
    fn pop_empty_is_none() {
        let mut h = VarHeap::new();
        h.grow_to(1);
        assert!(h.is_empty());
        assert_eq!(h.pop_max(&[0.0]), None);
    }

    #[test]
    fn contains_tracks_membership() {
        let activity = vec![1.0];
        let mut h = VarHeap::new();
        h.grow_to(1);
        assert!(!h.contains(v(0)));
        h.insert(v(0), &activity);
        assert!(h.contains(v(0)));
        h.pop_max(&activity);
        assert!(!h.contains(v(0)));
    }
}
