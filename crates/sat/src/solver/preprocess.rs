//! Certified SatELite-style preprocessing.
//!
//! [`Solver::preprocess`] runs a static-analysis pipeline over the clause
//! database at decision level 0, before the first search: occurrence-list
//! construction, tautology/duplicate removal, subsumption, self-subsuming
//! resolution, failed-literal probing on root literals, and bounded
//! variable elimination by clause distribution (NiVER/SatELite, in the
//! tradition of Eén & Biere), gated by a clause-growth budget.
//!
//! Every derived clause is a resolvent (or a propagation consequence) of
//! the active set and is emitted through the installed
//! [`ProofSink`](crate::ProofSink) *before* the clauses it replaces are
//! deleted, so DRAT certificates keep checking end-to-end. Eliminated
//! variables push witness entries onto the solver's reconstruction stack
//! (Järvisalo et al.): when a model is produced, the stack is walked in
//! reverse and any stacked clause left unsatisfied flips its witness
//! literal, so returned models satisfy the *original* formula.
//!
//! Variables that outlive the preprocessor — future assumption literals,
//! selector literals, anything later clauses mention — must be frozen with
//! [`Solver::freeze_var`] / [`Solver::freeze_lit`] before the call.
//! Subsumption, strengthening and failed literals preserve logical
//! equivalence and need no freezing; only variable elimination is gated.

use std::collections::HashSet;

use super::Solver;
use crate::clause::ClauseRef;
use crate::types::{LBool, Lit, Var};

/// Configuration of the [`Solver::preprocess`] pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PreprocessConfig {
    /// Master switch; `false` makes [`Solver::preprocess`] a no-op that
    /// only reports the formula size.
    pub enabled: bool,
    /// Delete clauses subsumed by a smaller (or equal) clause.
    pub subsumption: bool,
    /// Strengthen clauses by self-subsuming resolution (the strengthened
    /// clause is a resolvent, hence RUP for the proof checker).
    pub self_subsume: bool,
    /// Probe unassigned root literals: a probe whose propagation conflicts
    /// fixes its negation at level 0.
    pub failed_literals: bool,
    /// Upper bound on literal probes per preprocess call.
    pub probe_limit: usize,
    /// Bounded variable elimination by clause distribution.
    pub var_elim: bool,
    /// Extra clauses an elimination may add beyond the clauses it removes
    /// (0 = NiVER-style "never increase").
    pub growth_budget: usize,
    /// Variables with more total occurrences than this are never
    /// elimination candidates (keeps distribution quadratic blowup away).
    pub max_occurrences: usize,
    /// Maximum number of pipeline rounds; each round re-runs cleanup so
    /// units found late simplify clauses found early.
    pub rounds: usize,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        PreprocessConfig {
            enabled: true,
            subsumption: true,
            self_subsume: true,
            failed_literals: true,
            probe_limit: 20_000,
            var_elim: true,
            growth_budget: 0,
            max_occurrences: 30,
            rounds: 3,
        }
    }
}

/// Per-technique summary of one [`Solver::preprocess`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PreprocessStats {
    /// Rounds actually executed (a round that changes nothing ends the run).
    pub rounds: usize,
    /// Live clauses when the call started.
    pub clauses_before: usize,
    /// Live clauses when the call returned.
    pub clauses_after: usize,
    /// Total literals over live clauses when the call started.
    pub literals_before: usize,
    /// Total literals over live clauses when the call returned.
    pub literals_after: usize,
    /// Tautological clauses deleted.
    pub tautologies_removed: usize,
    /// Duplicate clauses deleted.
    pub duplicates_removed: usize,
    /// Clauses deleted because a root fact already satisfies them.
    pub satisfied_removed: usize,
    /// Root-falsified literals stripped during cleanup.
    pub stripped_literals: usize,
    /// Clauses deleted by subsumption.
    pub subsumed_removed: usize,
    /// Literals removed by self-subsuming resolution.
    pub strengthened_literals: usize,
    /// Literal probes performed.
    pub probes: usize,
    /// Failed literals detected (each fixes a unit at level 0).
    pub failed_literals: usize,
    /// Variables eliminated by bounded variable elimination.
    pub eliminated_vars: usize,
    /// Clauses deleted by variable elimination.
    pub eliminated_clauses: usize,
    /// Non-unit resolvents added by variable elimination.
    pub resolvents_added: usize,
}

impl PreprocessStats {
    /// Net clause reduction (`clauses_before - clauses_after`, floored at 0).
    pub fn clauses_removed(&self) -> usize {
        self.clauses_before.saturating_sub(self.clauses_after)
    }

    /// Net literal reduction (`literals_before - literals_after`, floored
    /// at 0).
    pub fn literals_removed(&self) -> usize {
        self.literals_before.saturating_sub(self.literals_after)
    }
}

impl Solver {
    /// Marks a variable as frozen: off-limits to variable elimination
    /// because it may appear in clauses added after preprocessing or in
    /// assumption sets of later `solve_with` calls.
    ///
    /// # Panics
    ///
    /// Panics if the variable was already eliminated — freezing must
    /// happen before [`Solver::preprocess`].
    pub fn freeze_var(&mut self, v: Var) {
        assert!(
            !self.eliminated[v.index()],
            "cannot freeze {v:?}: already eliminated by preprocessing"
        );
        self.frozen[v.index()] = true;
    }

    /// [`Solver::freeze_var`] for the literal's variable.
    pub fn freeze_lit(&mut self, l: Lit) {
        self.freeze_var(l.var());
    }

    /// `true` if the variable is frozen (see [`Solver::freeze_var`]).
    pub fn is_frozen(&self, v: Var) -> bool {
        self.frozen[v.index()]
    }

    /// `true` if preprocessing eliminated the variable. Eliminated
    /// variables never re-enter search; models reassemble their values
    /// from the reconstruction stack.
    pub fn is_eliminated(&self, v: Var) -> bool {
        self.eliminated[v.index()]
    }

    /// Variables eliminated by preprocessing, in index order.
    pub fn eliminated_vars(&self) -> Vec<Var> {
        self.eliminated
            .iter()
            .enumerate()
            .filter(|&(_, &e)| e)
            .map(|(i, _)| Var::from_index(i))
            .collect()
    }

    /// Snapshot of the live clause database as plain literal vectors
    /// (problem and learnt clauses), for audits and tests.
    pub fn clauses_snapshot(&self) -> Vec<Vec<Lit>> {
        self.db
            .iter_refs()
            .map(|r| self.db.get(r).lits().to_vec())
            .collect()
    }

    /// Runs the preprocessing pipeline (see the module docs) and returns
    /// the per-technique reduction summary.
    ///
    /// Must be called at decision level 0, ideally before the first
    /// `solve`. All derivations and deletions are DRAT-logged through the
    /// installed proof sink; eliminated variables are reassembled into
    /// every later model via the reconstruction stack. Freeze variables
    /// that outlive the preprocessor first ([`Solver::freeze_var`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use etcs_sat::{PreprocessConfig, Solver};
    /// let mut s = Solver::new();
    /// let a = s.new_var().positive();
    /// let b = s.new_var().positive();
    /// let c = s.new_var().positive();
    /// s.add_clause([a, b]);
    /// s.add_clause([a, b, c]); // subsumed
    /// let stats = s.preprocess(&PreprocessConfig::default());
    /// assert!(stats.clauses_removed() >= 1);
    /// assert!(s.solve().is_sat());
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if called above decision level 0.
    pub fn preprocess(&mut self, cfg: &PreprocessConfig) -> PreprocessStats {
        if !self.obs.is_enabled() {
            return self.preprocess_inner(cfg);
        }
        let span = self
            .obs
            .span_with("sat.preprocess", &[("clauses", self.num_clauses().into())]);
        let st = self.preprocess_inner(cfg);
        span.close_with(&[
            ("result", if self.ok { "reduced" } else { "unsat" }.into()),
            ("clauses_before", st.clauses_before.into()),
            ("clauses_after", st.clauses_after.into()),
            ("eliminated_vars", st.eliminated_vars.into()),
            ("subsumed", st.subsumed_removed.into()),
            ("strengthened", st.strengthened_literals.into()),
            ("failed_literals", st.failed_literals.into()),
            ("resolvents", st.resolvents_added.into()),
        ]);
        st
    }

    fn preprocess_inner(&mut self, cfg: &PreprocessConfig) -> PreprocessStats {
        assert_eq!(
            self.decision_level(),
            0,
            "preprocess runs at decision level 0"
        );
        let mut st = PreprocessStats::default();
        let (c0, l0) = self.formula_size();
        st.clauses_before = c0;
        st.literals_before = l0;
        st.clauses_after = c0;
        st.literals_after = l0;
        if !cfg.enabled || !self.ok {
            return st;
        }
        // Settle anything enqueued but not yet propagated.
        if self.propagate().is_some() {
            self.proof_add(&[]);
            self.ok = false;
            return st;
        }
        for round in 1..=cfg.rounds {
            st.rounds = round;
            let mut changed = self.pp_cleanup(&mut st);
            if self.ok && (cfg.subsumption || cfg.self_subsume) {
                changed |= self.pp_subsume(cfg, &mut st);
            }
            if self.ok && cfg.failed_literals {
                changed |= self.pp_failed_literals(cfg, &mut st);
            }
            if self.ok && cfg.var_elim {
                changed |= self.pp_eliminate(cfg, &mut st);
            }
            if !self.ok || !changed {
                break;
            }
        }
        let (c1, l1) = self.formula_size();
        st.clauses_after = c1;
        st.literals_after = l1;
        st
    }

    /// Live clause and literal counts.
    fn formula_size(&self) -> (usize, usize) {
        let mut clauses = 0usize;
        let mut literals = 0usize;
        for r in self.db.iter_refs() {
            clauses += 1;
            literals += self.db.get(r).len();
        }
        (clauses, literals)
    }

    /// Pins every new level-0 fact as an explicit unit lemma before any
    /// clause that implied it can be deleted (same contract as
    /// `remove_satisfied`): without the pins, later derivations relying on
    /// those facts would not be RUP for the backward checker.
    fn pin_root_facts(&mut self) {
        if self.proof.is_some() {
            for i in self.proof_units..self.trail.len() {
                let l = self.trail[i];
                self.proof_add(&[l]);
            }
            self.proof_units = self.trail.len();
        }
    }

    /// Cleanup sweep: deletes satisfied, tautological and duplicate
    /// clauses, strips root-falsified literals, settles recovered units.
    /// Leaves watches rebuilt and propagation complete.
    fn pp_cleanup(&mut self, st: &mut PreprocessStats) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        for &p in &self.trail {
            self.reasons[p.var().index()] = None;
        }
        self.pin_root_facts();
        let mut changed = false;
        let mut units: Vec<Lit> = Vec::new();
        let mut seen: HashSet<Vec<Lit>> = HashSet::new();
        let refs: Vec<ClauseRef> = self.db.iter_refs().collect();
        for r in refs {
            let original = self.db.get(r).lits().to_vec();
            let mut sorted = original.clone();
            sorted.sort_unstable();
            if sorted.windows(2).any(|w| w[1] == !w[0]) {
                self.proof_delete(&original);
                self.db.delete(r);
                st.tautologies_removed += 1;
                changed = true;
                continue;
            }
            let mut satisfied = false;
            let mut k = 0;
            while k < self.db.get(r).len() {
                let l = self.db.get(r).lits()[k];
                match self.lit_value(l) {
                    LBool::True => {
                        satisfied = true;
                        break;
                    }
                    LBool::False => {
                        self.db.get_mut(r).swap_remove(k);
                    }
                    LBool::Undef => k += 1,
                }
            }
            if satisfied {
                self.proof_delete(&original);
                self.db.delete(r);
                st.satisfied_removed += 1;
                changed = true;
                continue;
            }
            if original.len() != self.db.get(r).len() {
                // Stripping strengthened the clause: certify the stripped
                // version (RUP via the pinned root facts), retire the
                // original.
                let now = self.db.get(r).lits().to_vec();
                self.proof_add(&now);
                self.proof_delete(&original);
                st.stripped_literals += original.len() - now.len();
                changed = true;
            }
            match self.db.get(r).len() {
                0 => {
                    // The empty clause was just emitted by the stripping
                    // branch above; the formula is refuted.
                    self.ok = false;
                    self.db.delete(r);
                    return true;
                }
                1 => {
                    // The unit lemma stays in the proof's active set even
                    // though the database slot is released.
                    units.push(self.db.get(r).lits()[0]);
                    self.db.delete(r);
                    changed = true;
                }
                _ => {
                    let mut key = self.db.get(r).lits().to_vec();
                    key.sort_unstable();
                    if !seen.insert(key) {
                        let now = self.db.get(r).lits().to_vec();
                        self.proof_delete(&now);
                        self.db.delete(r);
                        st.duplicates_removed += 1;
                        changed = true;
                    }
                }
            }
        }
        if changed {
            self.rebuild_watches();
        }
        for u in units {
            match self.lit_value(u) {
                LBool::False => {
                    self.proof_add(&[]);
                    self.ok = false;
                    return true;
                }
                LBool::Undef => self.enqueue(u, None),
                LBool::True => {}
            }
        }
        if self.propagate().is_some() {
            self.proof_add(&[]);
            self.ok = false;
            return true;
        }
        changed
    }

    /// Subsumption and self-subsuming resolution over occurrence lists.
    ///
    /// For each clause `C` (smallest first) the candidates are the
    /// occurrence lists of `C`'s rarest literal `p` (for subsumption and
    /// strengthening on another literal) and of `¬p` (for strengthening on
    /// `p` itself): any clause subsumed or strengthenable by `C` must
    /// contain `p` or `¬p`.
    fn pp_subsume(&mut self, cfg: &PreprocessConfig, st: &mut PreprocessStats) -> bool {
        self.pin_root_facts();
        // Snapshot with canonically sorted literal lists.
        let refs: Vec<ClauseRef> = self.db.iter_refs().collect();
        let mut lits: Vec<Vec<Lit>> = Vec::with_capacity(refs.len());
        for &r in &refs {
            let mut c = self.db.get(r).lits().to_vec();
            c.sort_unstable();
            lits.push(c);
        }
        let mut alive = vec![true; refs.len()];
        let mut occ: Vec<Vec<usize>> = vec![Vec::new(); 2 * self.num_vars()];
        for (i, c) in lits.iter().enumerate() {
            for &l in c {
                occ[l.index()].push(i);
            }
        }
        let mut order: Vec<usize> = (0..refs.len()).collect();
        order.sort_by_key(|&i| lits[i].len());
        let mut changed = false;
        let mut units: Vec<Lit> = Vec::new();
        for &ci in &order {
            if !alive[ci] {
                continue;
            }
            let Some(&p) = lits[ci]
                .iter()
                .min_by_key(|l| occ[l.index()].len() + occ[(!**l).index()].len())
            else {
                continue;
            };
            let candidates: Vec<usize> = occ[p.index()]
                .iter()
                .chain(occ[(!p).index()].iter())
                .copied()
                .filter(|&di| di != ci && alive[di] && lits[di].len() >= lits[ci].len())
                .collect();
            for di in candidates {
                if !alive[ci] || !alive[di] {
                    continue;
                }
                match subsumes(&lits[ci], &lits[di]) {
                    Subsume::No => {}
                    Subsume::Subsumed => {
                        if !cfg.subsumption {
                            continue;
                        }
                        let orig = self.db.get(refs[di]).lits().to_vec();
                        self.proof_delete(&orig);
                        self.db.delete(refs[di]);
                        alive[di] = false;
                        st.subsumed_removed += 1;
                        changed = true;
                    }
                    Subsume::Strengthen(flip) => {
                        if !cfg.self_subsume {
                            continue;
                        }
                        // `D \ {¬flip}` is the resolvent of C and D on
                        // `flip`: emit it, retire the original D.
                        let orig = self.db.get(refs[di]).lits().to_vec();
                        let pos = self
                            .db
                            .get(refs[di])
                            .lits()
                            .iter()
                            .position(|&l| l == !flip)
                            .expect("strengthened literal is in the clause");
                        self.db.get_mut(refs[di]).swap_remove(pos);
                        let now = self.db.get(refs[di]).lits().to_vec();
                        self.proof_add(&now);
                        self.proof_delete(&orig);
                        st.strengthened_literals += 1;
                        changed = true;
                        lits[di].retain(|&l| l != !flip);
                        if now.len() == 1 {
                            units.push(now[0]);
                            self.db.delete(refs[di]);
                            alive[di] = false;
                        }
                        // The ¬flip occurrence list keeps a stale entry;
                        // `subsumes` re-checks against the updated lits.
                    }
                }
            }
        }
        if changed {
            self.rebuild_watches();
        }
        for u in units {
            match self.lit_value(u) {
                LBool::False => {
                    self.proof_add(&[]);
                    self.ok = false;
                    return true;
                }
                LBool::Undef => self.enqueue(u, None),
                LBool::True => {}
            }
        }
        if self.propagate().is_some() {
            self.proof_add(&[]);
            self.ok = false;
            return true;
        }
        changed
    }

    /// Failed-literal probing on roots: assume each candidate literal at a
    /// throwaway decision level; if propagation conflicts, the negation is
    /// a propagation consequence (RUP) and is fixed at level 0.
    fn pp_failed_literals(&mut self, cfg: &PreprocessConfig, st: &mut PreprocessStats) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        let nv = self.num_vars();
        let mut occurs = vec![false; 2 * nv];
        for r in self.db.iter_refs() {
            for &l in self.db.get(r).lits() {
                occurs[l.index()] = true;
            }
        }
        let mut changed = false;
        'vars: for vi in 0..nv {
            let v = Var::from_index(vi);
            if self.eliminated[vi] || self.assigns[vi] != LBool::Undef {
                continue;
            }
            for phase in [true, false] {
                if st.probes >= cfg.probe_limit {
                    break 'vars;
                }
                let l = v.lit(phase);
                // Assuming `l` only triggers clauses watching it, i.e.
                // clauses containing `¬l`; without any, no conflict can
                // arise and the probe is pointless.
                if !occurs[(!l).index()] {
                    continue;
                }
                if self.lit_value(l) != LBool::Undef {
                    continue;
                }
                st.probes += 1;
                self.trail_lim.push(self.trail.len());
                self.enqueue(l, None);
                let conflicted = self.propagate().is_some();
                self.cancel_until(0);
                if conflicted {
                    st.failed_literals += 1;
                    changed = true;
                    self.proof_add(&[!l]);
                    self.enqueue(!l, None);
                    if self.propagate().is_some() {
                        self.proof_add(&[]);
                        self.ok = false;
                        return true;
                    }
                    continue 'vars; // the variable is now assigned
                }
            }
        }
        changed
    }

    /// Bounded variable elimination by clause distribution. A candidate
    /// (unfrozen, unassigned, within the occurrence cap) is eliminated
    /// when its non-tautological, non-root-satisfied resolvents fit the
    /// growth budget; resolvents are emitted to the proof before the
    /// eliminated clauses are deleted, and the smaller-side clauses plus a
    /// default unit go onto the reconstruction stack.
    fn pp_eliminate(&mut self, cfg: &PreprocessConfig, st: &mut PreprocessStats) -> bool {
        self.pin_root_facts();
        let nv = self.num_vars();
        let mut occ: Vec<Vec<ClauseRef>> = vec![Vec::new(); 2 * nv];
        let refs: Vec<ClauseRef> = self.db.iter_refs().collect();
        for r in refs {
            for &l in self.db.get(r).lits() {
                occ[l.index()].push(r);
            }
        }
        let mut changed = false;
        for vi in 0..nv {
            let v = Var::from_index(vi);
            if self.frozen[vi] || self.eliminated[vi] || self.assigns[vi] != LBool::Undef {
                continue;
            }
            let pos: Vec<ClauseRef> = occ[v.positive().index()]
                .iter()
                .copied()
                .filter(|&r| !self.db.is_deleted(r))
                .collect();
            let neg: Vec<ClauseRef> = occ[v.negative().index()]
                .iter()
                .copied()
                .filter(|&r| !self.db.is_deleted(r))
                .collect();
            if pos.is_empty() && neg.is_empty() {
                continue;
            }
            if pos.len() + neg.len() > cfg.max_occurrences {
                continue;
            }
            let budget = pos.len() + neg.len() + cfg.growth_budget;
            let mut resolvents: Vec<Vec<Lit>> = Vec::new();
            let mut over_budget = false;
            'distribute: for &c in &pos {
                for &d in &neg {
                    if let Some(rlits) = self.resolve(c, d, v) {
                        resolvents.push(rlits);
                        if resolvents.len() > budget {
                            over_budget = true;
                            break 'distribute;
                        }
                    }
                }
            }
            if over_budget {
                continue;
            }
            // Emit additions before any deletion so every resolvent is RUP
            // against an active C and D.
            let mut conflict = false;
            for rlits in &resolvents {
                self.proof_add(rlits);
                match rlits.len() {
                    0 => {
                        self.ok = false;
                        conflict = true;
                        break;
                    }
                    1 => match self.lit_value(rlits[0]) {
                        LBool::False => {
                            self.proof_add(&[]);
                            self.ok = false;
                            conflict = true;
                            break;
                        }
                        LBool::Undef => self.enqueue(rlits[0], None),
                        LBool::True => {}
                    },
                    _ => {
                        let cref = self.db.push(rlits.clone(), false, 0);
                        for &l in rlits {
                            occ[l.index()].push(cref);
                        }
                        st.resolvents_added += 1;
                    }
                }
            }
            if conflict {
                return true;
            }
            // Reconstruction entries: the smaller side's clauses (witness =
            // this side's phase of v) pushed first, the opposite-phase
            // default unit last. The model walk runs in reverse: default
            // first, stored clauses override (Järvisalo et al.).
            let (stored, witness, default_lit) = if pos.len() > neg.len() {
                (&neg, v.negative(), v.positive())
            } else {
                (&pos, v.positive(), v.negative())
            };
            for &r in stored.iter() {
                let clause = self.db.get(r).lits().to_vec();
                self.reconstruction.push((witness, clause));
            }
            self.reconstruction.push((default_lit, vec![default_lit]));
            for &r in pos.iter().chain(neg.iter()) {
                let clause = self.db.get(r).lits().to_vec();
                self.proof_delete(&clause);
                self.db.delete(r);
                st.eliminated_clauses += 1;
            }
            self.eliminated[vi] = true;
            st.eliminated_vars += 1;
            changed = true;
        }
        if changed {
            self.rebuild_watches();
            if self.propagate().is_some() {
                self.proof_add(&[]);
                self.ok = false;
            }
        }
        changed
    }

    /// The resolvent of clauses `c` and `d` on pivot `v`, canonicalised
    /// against the root assignment: `None` for tautologies and
    /// root-satisfied resolvents (both are redundant — the latter is
    /// subsumed by a pinned unit lemma), root-falsified literals stripped
    /// (still RUP via the pinned units).
    fn resolve(&self, c: ClauseRef, d: ClauseRef, v: Var) -> Option<Vec<Lit>> {
        let mut out: Vec<Lit> = Vec::with_capacity(self.db.get(c).len() + self.db.get(d).len() - 2);
        for &l in self.db.get(c).lits().iter().chain(self.db.get(d).lits()) {
            if l.var() == v {
                continue;
            }
            match self.lit_value(l) {
                LBool::True => return None,
                LBool::False => {}
                LBool::Undef => out.push(l),
            }
        }
        out.sort_unstable();
        out.dedup();
        if out.windows(2).any(|w| w[1] == !w[0]) {
            return None;
        }
        Some(out)
    }
}

/// Relation of sorted clause `c` to sorted clause `d`.
enum Subsume {
    /// `c ⊆ d`: `d` is redundant.
    Subsumed,
    /// `c` with exactly one literal flipped is contained in `d`: `d` can
    /// drop the flipped literal's negation (self-subsuming resolution).
    /// Carries the literal as it appears in `c`.
    Strengthen(Lit),
    /// Neither.
    No,
}

/// Merge-scan subsumption check over sorted literal slices, allowing at
/// most one literal of `c` to occur negated in `d`.
fn subsumes(c: &[Lit], d: &[Lit]) -> Subsume {
    let mut flip: Option<Lit> = None;
    let mut di = 0usize;
    'next: for &cl in c {
        while di < d.len() {
            let dl = d[di];
            di += 1;
            if dl == cl {
                continue 'next;
            }
            if dl == !cl {
                if flip.is_some() {
                    return Subsume::No;
                }
                flip = Some(cl);
                continue 'next;
            }
            // Sorted order: literals of the same variable are adjacent
            // codes, so once past cl's code it cannot appear later.
            if dl.code() > cl.code() {
                return Subsume::No;
            }
        }
        return Subsume::No;
    }
    match flip {
        None => Subsume::Subsumed,
        Some(l) => Subsume::Strengthen(l),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proof::{check_drat, DratProof};
    use crate::solver::SatResult;
    use std::sync::{Arc, Mutex};

    fn lits(s: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| s.new_var().positive()).collect()
    }

    #[test]
    fn duplicate_clauses_are_removed() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause([v[0], v[1]]);
        s.add_clause([v[1], v[0]]);
        let st = s.preprocess(&PreprocessConfig::default());
        assert_eq!(st.duplicates_removed, 1);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn subsumed_clause_is_removed() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause([v[0], v[1]]);
        s.add_clause([v[0], v[1], v[2]]);
        let cfg = PreprocessConfig {
            var_elim: false,
            ..PreprocessConfig::default()
        };
        let st = s.preprocess(&cfg);
        assert_eq!(st.subsumed_removed, 1);
        assert_eq!(st.clauses_removed(), 1);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn self_subsumption_strengthens() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause([v[0], v[1], v[2]]);
        s.add_clause([!v[0], v[1], v[2]]);
        let cfg = PreprocessConfig {
            var_elim: false,
            failed_literals: false,
            ..PreprocessConfig::default()
        };
        let st = s.preprocess(&cfg);
        // Each clause strengthens the other down to [v1, v2]; the
        // duplicate then disappears in the next cleanup round.
        assert!(st.strengthened_literals >= 1);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn failed_literal_fixes_root_unit() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause([!v[0], v[1]]);
        s.add_clause([!v[0], !v[1]]);
        let cfg = PreprocessConfig {
            var_elim: false,
            subsumption: false,
            self_subsume: false,
            ..PreprocessConfig::default()
        };
        let st = s.preprocess(&cfg);
        assert!(st.failed_literals >= 1);
        assert_eq!(s.lit_value(!v[0]), LBool::True);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn variable_elimination_reconstructs_models() {
        // x = AND(a, b) as Tseitin clauses, plus (x ∨ c): x is eliminable.
        let mut s = Solver::new();
        let a = s.new_var().positive();
        let b = s.new_var().positive();
        let x = s.new_var().positive();
        let c = s.new_var().positive();
        let original: Vec<Vec<Lit>> = vec![
            vec![!x, a],
            vec![!x, b],
            vec![x, !a, !b],
            vec![x, c],
            vec![!c, a],
        ];
        for cl in &original {
            s.add_clause(cl.iter().copied());
        }
        for l in [a, b, c] {
            s.freeze_lit(l);
        }
        let st = s.preprocess(&PreprocessConfig::default());
        assert!(st.eliminated_vars >= 1, "x must be eliminated: {st:?}");
        assert!(s.is_eliminated(x.var()));
        let SatResult::Sat(m) = s.solve() else {
            panic!("satisfiable");
        };
        for cl in &original {
            assert!(
                m.satisfies_clause(cl),
                "reconstructed model violates {cl:?}"
            );
        }
    }

    #[test]
    fn frozen_variables_survive_elimination() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause([!v[0], v[1]]);
        s.add_clause([v[0], v[2]]);
        for &l in &v {
            s.freeze_lit(l);
        }
        let st = s.preprocess(&PreprocessConfig::default());
        assert_eq!(st.eliminated_vars, 0);
        // Frozen literals remain valid assumptions.
        assert!(s.solve_with(&[v[0]]).is_sat());
        assert!(s.solve_with(&[!v[0]]).is_sat());
    }

    #[test]
    fn pure_literal_is_eliminated_with_default_witness() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause([v[0], v[1]]);
        s.freeze_lit(v[1]);
        let st = s.preprocess(&PreprocessConfig::default());
        assert_eq!(st.eliminated_vars, 1);
        let SatResult::Sat(m) = s.solve() else {
            panic!("satisfiable");
        };
        assert!(m.satisfies_clause(&[v[0], v[1]]));
    }

    #[test]
    fn unsat_survives_preprocessing_with_checked_proof() {
        // PHP(4,3) refuted after preprocessing; the DRAT certificate must
        // check against the original axioms, preprocessing steps included.
        let n = 4usize;
        let proof = Arc::new(Mutex::new(DratProof::new()));
        let mut s = Solver::new();
        s.set_proof_sink(Box::new(Arc::clone(&proof)));
        let p: Vec<Vec<Lit>> = (0..n)
            .map(|_| (0..n - 1).map(|_| s.new_var().positive()).collect())
            .collect();
        let mut axioms: Vec<Vec<Lit>> = Vec::new();
        for row in &p {
            axioms.push(row.clone());
        }
        for i in 0..n {
            for j in (i + 1)..n {
                for (&a, &b) in p[i].iter().zip(&p[j]) {
                    axioms.push(vec![!a, !b]);
                }
            }
        }
        for c in &axioms {
            s.add_clause(c.iter().copied());
        }
        let st = s.preprocess(&PreprocessConfig::default());
        assert!(st.rounds >= 1);
        assert!(s.solve().is_unsat());
        let check =
            check_drat(&axioms, &proof.lock().expect("proof lock"), &[]).expect("proof must check");
        assert!(check.checked_lemmas >= 1);
    }

    #[test]
    fn preprocessing_detected_unsat_is_certified() {
        // a ∧ (¬a ∨ b) ∧ (¬a ∨ ¬b): failed-literal probing or cleanup
        // refutes this without search.
        let proof = Arc::new(Mutex::new(DratProof::new()));
        let mut s = Solver::new();
        s.set_proof_sink(Box::new(Arc::clone(&proof)));
        let a = s.new_var().positive();
        let b = s.new_var().positive();
        let axioms = vec![vec![a], vec![!a, b], vec![!a, !b]];
        for c in &axioms {
            s.add_clause(c.iter().copied());
        }
        s.preprocess(&PreprocessConfig::default());
        assert!(s.solve().is_unsat());
        check_drat(&axioms, &proof.lock().expect("proof lock"), &[]).expect("proof must check");
    }

    #[test]
    fn disabled_config_is_a_no_op() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause([v[0], v[1]]);
        s.add_clause([v[1], v[0]]);
        let cfg = PreprocessConfig {
            enabled: false,
            ..PreprocessConfig::default()
        };
        let st = s.preprocess(&cfg);
        assert_eq!(st.rounds, 0);
        assert_eq!(st.clauses_removed(), 0);
        assert_eq!(s.num_clauses(), 2);
    }

    #[test]
    fn growth_budget_zero_blocks_explosive_eliminations() {
        // v occurs in 3 positive and 3 negative clauses over disjoint
        // variables: distribution yields 9 resolvents > 6 originals.
        let mut s = Solver::new();
        let v = s.new_var();
        let others: Vec<Lit> = (0..6).map(|_| s.new_var().positive()).collect();
        for &o in &others[..3] {
            s.add_clause([v.positive(), o]);
        }
        for &o in &others[3..] {
            s.add_clause([v.negative(), o]);
        }
        for &o in &others {
            s.freeze_lit(o);
        }
        let cfg = PreprocessConfig {
            failed_literals: false,
            ..PreprocessConfig::default()
        };
        let st = s.preprocess(&cfg);
        assert_eq!(st.eliminated_vars, 0, "9 resolvents exceed the budget");
        let roomy = PreprocessConfig {
            growth_budget: 3,
            failed_literals: false,
            ..PreprocessConfig::default()
        };
        let st = s.preprocess(&roomy);
        assert_eq!(st.eliminated_vars, 1);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn preprocess_emits_obs_span() {
        let (obs, sink) = etcs_obs::Obs::memory();
        let mut s = Solver::new();
        s.set_obs(obs);
        let v = lits(&mut s, 3);
        s.add_clause([v[0], v[1]]);
        s.add_clause([v[0], v[1], v[2]]);
        let st = s.preprocess(&PreprocessConfig::default());
        let events = sink.events();
        let close = events
            .iter()
            .find(|e| e.kind == etcs_obs::EventKind::SpanClose && e.name == "sat.preprocess")
            .expect("sat.preprocess span must close");
        assert_eq!(close.field_str("result"), Some("reduced"));
        assert_eq!(
            close.field_u64("clauses_before"),
            Some(st.clauses_before as u64)
        );
        assert_eq!(
            close.field_u64("clauses_after"),
            Some(st.clauses_after as u64)
        );
    }

    #[test]
    fn incremental_solving_after_preprocess_respects_frozen_assumptions() {
        // Selector-guarded clauses survive preprocessing when the
        // selectors are frozen, and cores still make sense.
        let mut s = Solver::new();
        let sel: Vec<Lit> = (0..2).map(|_| s.new_var().positive()).collect();
        let a = s.new_var().positive();
        s.add_clause([!sel[0], a]);
        s.add_clause([!sel[1], !a]);
        for &l in &sel {
            s.freeze_lit(l);
        }
        s.freeze_lit(a);
        s.preprocess(&PreprocessConfig::default());
        assert!(s.solve_with(&[sel[0]]).is_sat());
        assert!(s.solve_with(&[sel[1]]).is_sat());
        match s.solve_with(&[sel[0], sel[1]]) {
            SatResult::Unsat { core } => assert!(!core.is_empty()),
            other => panic!("expected unsat: {other:?}"),
        }
    }
}
