//! In-process clause-sharing parallel portfolio.
//!
//! [`Solver::set_portfolio`] arms a race: each `solve`/`solve_with` call
//! clones the solver into N *diversified* CDCL workers (varied restart
//! base, VSIDS decay, saved-phase polarity, and seed-scrambled activity
//! tie-breaking), runs them on the same formula under `std::thread::scope`,
//! and returns the first decisive verdict, cancelling the siblings through
//! a private [`Interrupt`] chained to the caller's external token.
//!
//! While racing, workers exchange small-LBD learnt clauses through a
//! lock-light [`SharePool`]: exports are buffered locally and flushed at
//! the existing `Interrupt`-style sync points (the configurable conflict
//! poll and restart boundaries), imports happen at restart boundaries only
//! — the worker is at decision level 0 there, so an imported clause can be
//! evaluated, strengthened against level-0 facts and attached soundly.
//! Every imported clause must pass the same structural lints `etcs-lint`
//! enforces on encoder output (no duplicate literals, no tautology) before
//! it enters a worker's clause database.
//!
//! Soundness: workers are clones of one formula, and clauses learnt under
//! assumptions are consequences of the formula alone (see
//! [`Solver::solve_with`]), so any worker may adopt any other worker's
//! learnt clauses. Verdicts are therefore identical to a single-threaded
//! solve; only the witness model (and the particular — still valid — unsat
//! core) may differ. Proof logging is incompatible: an imported clause has
//! no local derivation, so [`Solver`] silently falls back to
//! single-threaded search while a proof sink is installed, and the
//! `*_certified` task variants in `etcs-core` reject portfolio mode with a
//! typed error.

use super::{SatResult, Solver, SolverConfig};
use crate::interrupt::Interrupt;
use crate::stats::Stats;
use crate::types::{LBool, Lit, Var};
use etcs_obs::Obs;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Per-worker diversification tables, indexed by `worker_index % 8`.
/// Worker 0 is the calling solver itself and keeps its own configuration.
const RESTART_DIVERSITY: [u64; 8] = [128, 64, 256, 32, 512, 100, 192, 48];
const DECAY_DIVERSITY: [f64; 8] = [0.95, 0.90, 0.97, 0.85, 0.99, 0.80, 0.93, 0.75];

/// Upper bound on racing threads; beyond this, extra workers only add
/// cloning cost without search diversity worth having.
const MAX_THREADS: usize = 64;

/// Configuration of the in-process clause-sharing portfolio.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PortfolioConfig {
    /// Number of racing workers, including the calling solver itself.
    /// Values below 2 disable the portfolio.
    pub threads: usize,
    /// Only learnt clauses with a literal-block distance at or below this
    /// bound are shared (binary clauses and units are always shared).
    pub lbd_limit: u32,
    /// Length cap on shared clauses; longer lemmas rarely pay for the
    /// import cost.
    pub max_export_len: usize,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        PortfolioConfig {
            threads: 2,
            lbd_limit: 4,
            max_export_len: 24,
        }
    }
}

impl PortfolioConfig {
    /// Default sharing policy with the given thread count.
    pub fn with_threads(threads: usize) -> Self {
        PortfolioConfig {
            threads,
            ..Default::default()
        }
    }
}

/// Cumulative clause-sharing counters across a solver's portfolio solves.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PortfolioStats {
    /// Portfolio races run (one per `solve`/`solve_with` call).
    pub solves: u64,
    /// Clauses exported into the share pool, summed over all workers.
    pub exported: u64,
    /// Import candidates pulled from the pool (foreign entries seen).
    pub imported: u64,
    /// Imported clauses kept after the LBD filter, the structural lints and
    /// level-0 evaluation — i.e. clauses that actually entered a worker's
    /// clause database (or were enqueued as units).
    pub kept: u64,
    /// Import candidates rejected by the LBD filter.
    pub lbd_filtered: u64,
    /// Import candidates rejected by the structural lints (duplicate or
    /// tautological literals). Always 0 for clauses produced by conflict
    /// analysis; the filter pins the invariant.
    pub lint_rejected: u64,
    /// Conflicts summed over every racing worker (including the caller).
    pub worker_conflicts: u64,
    /// Worker index that produced the most recent decisive verdict
    /// (0 = the calling solver).
    pub last_winner: usize,
}

/// `true` when a clause passes the structural lints `etcs-lint` enforces on
/// encoder output: no duplicate literals and no tautological pair `x, ¬x`.
/// The portfolio applies this to every imported clause before it enters a
/// worker's clause database.
pub fn clause_is_structurally_clean(lits: &[Lit]) -> bool {
    let mut sorted: Vec<Lit> = lits.to_vec();
    sorted.sort_unstable();
    for w in sorted.windows(2) {
        if w[0] == w[1] || w[0].var() == w[1].var() {
            return false;
        }
    }
    true
}

/// One shared learnt clause.
#[derive(Clone, Debug)]
struct PoolEntry {
    /// Exporting worker; importers skip their own entries.
    from: usize,
    /// Literal-block distance at learning time.
    lbd: u32,
    lits: Arc<[Lit]>,
}

/// Lock-light export/import buffer shared by all workers of one race.
///
/// Entries are append-only for the lifetime of a single `solve` call; each
/// worker keeps a private cursor, so an import is one atomic load when
/// nothing new arrived and one short critical section otherwise.
#[derive(Debug, Default)]
pub(super) struct SharePool {
    entries: Mutex<Vec<PoolEntry>>,
    /// Mirror of `entries.len()`, readable without the lock.
    len: AtomicUsize,
    exported: AtomicU64,
    imported: AtomicU64,
    kept: AtomicU64,
    lbd_filtered: AtomicU64,
    lint_rejected: AtomicU64,
}

/// A worker's attachment to the share pool.
#[derive(Debug)]
pub(super) struct ShareState {
    pool: Arc<SharePool>,
    /// This worker's index (0 = the calling solver).
    id: usize,
    /// Pool position up to which entries have been considered for import.
    cursor: usize,
    /// Locally buffered exports, flushed at sync points.
    export_buf: Vec<(u32, Arc<[Lit]>)>,
    lbd_limit: u32,
    max_export_len: usize,
}

impl ShareState {
    fn new(pool: Arc<SharePool>, id: usize, cfg: &PortfolioConfig) -> Self {
        ShareState {
            pool,
            id,
            cursor: 0,
            export_buf: Vec::new(),
            lbd_limit: cfg.lbd_limit,
            max_export_len: cfg.max_export_len,
        }
    }
}

impl Solver {
    /// Buffers a freshly learnt clause for sharing if it passes the export
    /// policy (small LBD or binary/unit, bounded length).
    pub(super) fn share_export(&mut self, lits: &[Lit], lbd: u32) {
        let share = self.share.as_mut().expect("share_export without share");
        if lits.len() > share.max_export_len {
            return;
        }
        if lbd > share.lbd_limit && lits.len() > 2 {
            return;
        }
        share.export_buf.push((lbd, Arc::from(lits)));
    }

    /// Publishes buffered exports to the pool. Called at the conflict-poll
    /// cadence and at restart boundaries; a no-op without buffered clauses,
    /// so the lock is only touched when there is something to say.
    pub(super) fn share_flush_exports(&mut self) {
        let share = self.share.as_mut().expect("flush without share");
        if share.export_buf.is_empty() {
            return;
        }
        let n = share.export_buf.len() as u64;
        let mut entries = share.pool.entries.lock().expect("share pool poisoned");
        for (lbd, lits) in share.export_buf.drain(..) {
            entries.push(PoolEntry {
                from: share.id,
                lbd,
                lits,
            });
        }
        let len = entries.len();
        drop(entries);
        share.pool.len.store(len, Ordering::Release);
        share.pool.exported.fetch_add(n, Ordering::Relaxed);
    }

    /// Restart-boundary sync: flush buffered exports, then absorb every
    /// foreign clause published since the last sync. Must run at decision
    /// level 0; may derive `ok = false` (the imported clause set is a
    /// consequence of the shared formula, so that verdict is sound).
    pub(super) fn share_sync(&mut self) {
        debug_assert_eq!(self.decision_level(), 0, "imports happen at level 0");
        self.share_flush_exports();
        self.share_import();
    }

    fn share_import(&mut self) {
        let share = self.share.as_mut().expect("import without share");
        if share.pool.len.load(Ordering::Acquire) <= share.cursor {
            return;
        }
        let fresh: Vec<PoolEntry> = {
            let entries = share.pool.entries.lock().expect("share pool poisoned");
            let fresh = entries[share.cursor..]
                .iter()
                .filter(|e| e.from != share.id)
                .cloned()
                .collect();
            share.cursor = entries.len();
            fresh
        };
        let pool = Arc::clone(&share.pool);
        let lbd_limit = share.lbd_limit;
        pool.imported
            .fetch_add(fresh.len() as u64, Ordering::Relaxed);
        for entry in fresh {
            if entry.lbd > lbd_limit && entry.lits.len() > 2 {
                pool.lbd_filtered.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            if !clause_is_structurally_clean(&entry.lits) {
                pool.lint_rejected.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            // Evaluate against level-0 facts: skip satisfied clauses, strip
            // falsified literals, attach the strengthened remainder.
            let mut keep: Vec<Lit> = Vec::with_capacity(entry.lits.len());
            let mut satisfied = false;
            for &l in entry.lits.iter() {
                match self.lit_value(l) {
                    LBool::True => {
                        satisfied = true;
                        break;
                    }
                    LBool::False => {}
                    LBool::Undef => keep.push(l),
                }
            }
            if satisfied {
                continue;
            }
            match keep.len() {
                0 => {
                    // Every literal is false at level 0: the shared formula
                    // is unsatisfiable.
                    self.ok = false;
                    pool.kept.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                1 => {
                    self.enqueue(keep[0], None);
                    pool.kept.fetch_add(1, Ordering::Relaxed);
                    if self.propagate().is_some() {
                        self.ok = false;
                        return;
                    }
                }
                _ => {
                    let lbd = entry.lbd.min(keep.len() as u32);
                    let cref = self.db.push(keep, true, lbd);
                    self.attach(cref);
                    pool.kept.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Races `cfg.threads` diversified workers on the current formula and
    /// returns the first decisive verdict. Called from `solve_dispatch`,
    /// which has already checked eligibility (≥ 2 threads, no proof sink).
    pub(super) fn solve_portfolio(
        &mut self,
        assumptions: &[Lit],
        cfg: PortfolioConfig,
    ) -> SatResult {
        debug_assert!(self.proof.is_none(), "portfolio solves are uncertified");
        if !self.ok {
            return self.solve_with_inner(assumptions);
        }
        let threads = cfg.threads.min(MAX_THREADS);
        let external = std::mem::replace(&mut self.interrupt, Interrupt::none());
        let race = Interrupt::chained(&external);
        let pool = Arc::new(SharePool::default());
        let mut workers: Vec<Solver> = (1..threads)
            .map(|i| self.diversified_worker(i, &cfg, &pool, &race))
            .collect();
        // The calling solver races as worker 0, unperturbed: when it wins,
        // the verdict and the state that produced it already live here.
        self.interrupt = race.clone();
        self.share = Some(ShareState::new(Arc::clone(&pool), 0, &cfg));
        let conflicts_before = self.stats.conflicts;

        let (mine, others) = std::thread::scope(|scope| {
            let handles: Vec<_> = workers
                .iter_mut()
                .map(|worker| {
                    let race = race.clone();
                    scope.spawn(move || {
                        let result = worker.solve_with_inner(assumptions);
                        // Publish the final buffered lemmas so the winner's
                        // closing drain can adopt them.
                        worker.share_flush_exports();
                        if !matches!(result, SatResult::Unknown) {
                            race.trigger();
                        }
                        result
                    })
                })
                .collect();
            let mine = self.solve_with_inner(assumptions);
            if !matches!(mine, SatResult::Unknown) {
                race.trigger();
            }
            let others: Vec<SatResult> = handles
                .into_iter()
                .map(|h| h.join().expect("portfolio worker panicked"))
                .collect();
            (mine, others)
        });

        // Closing drain: absorb everything the pool still holds, so the
        // incremental caller keeps the race's pooled knowledge even when a
        // sibling won. Then detach from the (call-scoped) pool and restore
        // the external token.
        if self.ok {
            self.share_sync();
        }
        self.share = None;
        self.interrupt = external;

        let mut result = mine;
        let mut winner = 0usize;
        if matches!(result, SatResult::Unknown) {
            for (i, r) in others.iter().enumerate() {
                if !matches!(r, SatResult::Unknown) {
                    winner = i + 1;
                    result = r.clone();
                    break;
                }
            }
        }

        let worker_conflicts = (self.stats.conflicts - conflicts_before)
            + workers.iter().map(|w| w.stats.conflicts).sum::<u64>();
        let exported = pool.exported.load(Ordering::Relaxed);
        let imported = pool.imported.load(Ordering::Relaxed);
        let kept = pool.kept.load(Ordering::Relaxed);
        let lbd_filtered = pool.lbd_filtered.load(Ordering::Relaxed);
        let lint_rejected = pool.lint_rejected.load(Ordering::Relaxed);
        self.portfolio_stats.solves += 1;
        self.portfolio_stats.exported += exported;
        self.portfolio_stats.imported += imported;
        self.portfolio_stats.kept += kept;
        self.portfolio_stats.lbd_filtered += lbd_filtered;
        self.portfolio_stats.lint_rejected += lint_rejected;
        self.portfolio_stats.worker_conflicts += worker_conflicts;
        if !matches!(result, SatResult::Unknown) {
            self.portfolio_stats.last_winner = winner;
        }
        if self.obs.is_enabled() {
            self.obs.event(
                "portfolio.share",
                &[("threads", threads.into()), ("exported", exported.into())],
            );
            self.obs.event(
                "portfolio.import",
                &[
                    ("imported", imported.into()),
                    ("kept", kept.into()),
                    ("lbd_filtered", lbd_filtered.into()),
                    ("lint_rejected", lint_rejected.into()),
                ],
            );
            if !matches!(result, SatResult::Unknown) {
                self.obs.event(
                    "portfolio.winner",
                    &[
                        ("worker", winner.into()),
                        (
                            "verdict",
                            match &result {
                                SatResult::Sat(_) => "sat",
                                SatResult::Unsat { .. } => "unsat",
                                SatResult::Unknown => unreachable!(),
                            }
                            .into(),
                        ),
                        ("worker_conflicts", worker_conflicts.into()),
                    ],
                );
            }
        }
        result
    }

    /// Clones this solver into worker `index` of a race: same formula and
    /// learnt state, diversified search parameters, the race token
    /// installed, and a fresh attachment to the share pool.
    fn diversified_worker(
        &self,
        index: usize,
        cfg: &PortfolioConfig,
        pool: &Arc<SharePool>,
        race: &Interrupt,
    ) -> Solver {
        let mut worker = self.clone_worker();
        worker.interrupt = race.clone();
        worker.share = Some(ShareState::new(Arc::clone(pool), index, cfg));
        let div = index % RESTART_DIVERSITY.len();
        worker.config = SolverConfig {
            restart_base: RESTART_DIVERSITY[div],
            var_decay: DECAY_DIVERSITY[div],
            poll_interval: self.config.poll_interval,
        };
        // Polarity diversification: every third worker searches the
        // complementary phase space first.
        if index % 3 == 2 {
            worker.default_phase = !worker.default_phase;
            for p in &mut worker.phase {
                *p = !*p;
            }
        }
        // Seed-scrambled tie-breaking: a tiny per-variable activity jitter
        // makes equal-activity variables branch in a worker-specific order.
        let mut seed =
            0x9e37_79b9_7f4a_7c15u64 ^ (index as u64).wrapping_mul(0xd1b5_4a32_d192_ed03);
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for a in &mut worker.activity {
            *a += (next() >> 40) as f64 * 1e-10;
        }
        worker.rebuild_heap();
        worker
    }

    /// Re-inserts every unassigned, non-eliminated variable into a fresh
    /// heap (needed after bulk activity edits, which invalidate heap order).
    fn rebuild_heap(&mut self) {
        self.heap = super::VarHeap::new();
        self.heap.grow_to(self.assigns.len());
        for v in 0..self.assigns.len() {
            if self.assigns[v] == LBool::Undef && !self.eliminated[v] {
                self.heap.insert(Var::from_index(v), &self.activity);
            }
        }
    }

    /// A deep copy of the solver carrying formula, learnt clauses,
    /// activities and phases — but no proof sink, no observability, no
    /// portfolio of its own, and fresh statistics.
    fn clone_worker(&self) -> Solver {
        Solver {
            db: self.db.clone(),
            watches: self.watches.clone(),
            assigns: self.assigns.clone(),
            levels: self.levels.clone(),
            reasons: self.reasons.clone(),
            trail: self.trail.clone(),
            trail_lim: self.trail_lim.clone(),
            qhead: self.qhead,
            heap: self.heap.clone(),
            activity: self.activity.clone(),
            var_inc: self.var_inc,
            cla_inc: self.cla_inc,
            phase: self.phase.clone(),
            ok: self.ok,
            seen: self.seen.clone(),
            stats: Stats::default(),
            reduce_limit: self.reduce_limit,
            last_simplify_trail: self.last_simplify_trail,
            proof_units: self.proof_units,
            conflict_budget: self.conflict_budget,
            interrupt: Interrupt::none(),
            default_phase: self.default_phase,
            config: self.config,
            portfolio: None,
            share: None,
            portfolio_stats: PortfolioStats::default(),
            proof: None,
            obs: Obs::disabled(),
            eliminated: self.eliminated.clone(),
            frozen: self.frozen.clone(),
            reconstruction: self.reconstruction.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proof::{check_drat, DratProof};

    #[allow(clippy::needless_range_loop)]
    fn pigeonhole(n: usize) -> (Solver, Vec<Vec<Lit>>) {
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..n)
            .map(|_| (0..n - 1).map(|_| s.new_var().positive()).collect())
            .collect();
        let mut clauses: Vec<Vec<Lit>> = Vec::new();
        for row in &p {
            clauses.push(row.clone());
        }
        for h in 0..n - 1 {
            for i in 0..n {
                for j in (i + 1)..n {
                    clauses.push(vec![!p[i][h], !p[j][h]]);
                }
            }
        }
        for c in &clauses {
            s.add_clause(c.iter().copied());
        }
        (s, clauses)
    }

    #[test]
    fn structural_lints_reject_duplicates_and_tautologies() {
        let a = Var::from_index(0).positive();
        let b = Var::from_index(1).positive();
        assert!(clause_is_structurally_clean(&[a, b]));
        assert!(clause_is_structurally_clean(&[b, !a]));
        assert!(!clause_is_structurally_clean(&[a, b, a]));
        assert!(!clause_is_structurally_clean(&[a, b, !a]));
        assert!(clause_is_structurally_clean(&[]));
        assert!(clause_is_structurally_clean(&[a]));
    }

    #[test]
    fn portfolio_matches_single_threaded_unsat_verdict() {
        let (mut single, _) = pigeonhole(6);
        let (mut raced, _) = pigeonhole(6);
        raced.set_portfolio(Some(PortfolioConfig::with_threads(4)));
        assert!(single.solve().is_unsat());
        assert!(raced.solve().is_unsat());
        assert_eq!(raced.portfolio_stats().solves, 1);
        // The race is over and the solver is immediately reusable; level-0
        // unsatisfiability now short-circuits without spawning a race.
        assert!(raced.solve().is_unsat());
        assert_eq!(raced.portfolio_stats().solves, 1);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn portfolio_sat_model_satisfies_every_clause() {
        // Satisfiable: hole constraints only, plus a forced placement.
        let n = 6usize;
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..n)
            .map(|_| (0..n).map(|_| s.new_var().positive()).collect())
            .collect();
        let mut clauses: Vec<Vec<Lit>> = Vec::new();
        for row in &p {
            clauses.push(row.clone());
        }
        for h in 0..n {
            for i in 0..n {
                for j in (i + 1)..n {
                    clauses.push(vec![!p[i][h], !p[j][h]]);
                }
            }
        }
        for c in &clauses {
            s.add_clause(c.iter().copied());
        }
        s.set_portfolio(Some(PortfolioConfig::with_threads(3)));
        match s.solve() {
            SatResult::Sat(m) => {
                for c in &clauses {
                    assert!(c.iter().any(|&l| m.lit_is_true(l)), "model violates {c:?}");
                }
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn portfolio_core_is_a_subset_of_assumptions() {
        let mut s = Solver::new();
        let a = s.new_var().positive();
        let b = s.new_var().positive();
        let junk: Vec<Lit> = (0..4).map(|_| s.new_var().positive()).collect();
        s.add_clause([!a, !b]);
        s.set_portfolio(Some(PortfolioConfig::with_threads(2)));
        let mut assumptions = junk.clone();
        assumptions.push(a);
        assumptions.push(b);
        match s.solve_with(&assumptions) {
            SatResult::Unsat { core } => {
                assert!(!core.is_empty());
                assert!(core.iter().all(|l| assumptions.contains(l)));
            }
            other => panic!("expected unsat, got {other:?}"),
        }
        // Assumptions never leak into the next call.
        assert!(s.solve().is_sat());
    }

    #[test]
    fn pre_triggered_interrupt_cancels_the_whole_race_and_state_survives() {
        let (mut s, _) = pigeonhole(6);
        s.set_portfolio(Some(PortfolioConfig::with_threads(3)));
        let token = Interrupt::new();
        token.trigger();
        s.set_interrupt(token.clone());
        assert_eq!(s.solve(), SatResult::Unknown);
        // The external token still reports the external reason.
        assert_eq!(
            token.probe(),
            Some(crate::interrupt::InterruptReason::Cancelled)
        );
        // Sibling cancellation left the solver reusable: detach and finish.
        s.set_interrupt(Interrupt::none());
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn proof_logging_solver_falls_back_to_single_threaded_and_certifies() {
        let mut s = Solver::new();
        let proof = Arc::new(Mutex::new(DratProof::new()));
        s.set_proof_sink(Box::new(Arc::clone(&proof)));
        s.set_portfolio(Some(PortfolioConfig::with_threads(4)));
        let a = s.new_var().positive();
        let b = s.new_var().positive();
        let axioms = vec![vec![a, b], vec![!a, b], vec![a, !b], vec![!a, !b]];
        for c in &axioms {
            s.add_clause(c.iter().copied());
        }
        assert!(s.solve().is_unsat());
        assert_eq!(
            s.portfolio_stats().solves,
            0,
            "a proof-logging solve must not race"
        );
        let proof = proof.lock().expect("proof lock");
        check_drat(&axioms, &proof, &[]).expect("certificate is valid");
    }

    #[test]
    fn sharing_moves_clauses_between_workers_on_a_hard_instance() {
        let (mut s, _) = pigeonhole(8);
        s.set_portfolio(Some(PortfolioConfig::with_threads(4)));
        assert!(s.solve().is_unsat());
        let stats = s.portfolio_stats();
        assert!(stats.exported > 0, "no clauses were exported: {stats:?}");
        assert_eq!(stats.lint_rejected, 0, "learnt clauses are always clean");
    }
}
