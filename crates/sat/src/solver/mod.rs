//! Conflict-driven clause-learning (CDCL) SAT solver.
//!
//! The engine implements the standard modern architecture: two-watched-literal
//! propagation with blocker literals, first-UIP conflict analysis with clause
//! minimisation, VSIDS decision heuristics with phase saving, Luby restarts,
//! LBD-based learnt-clause database reduction, level-0 simplification, and
//! incremental solving under assumptions with unsat-core extraction.
//!
//! This crate is the substrate standing in for Z3 in the ETCS Level 3
//! reproduction: the encodings in `etcs-core` are plain CNF plus linear
//! objectives, for which an exact CDCL + MaxSAT stack produces identical
//! answers.

mod heap;
pub mod parallel;
mod preprocess;
mod restart;

pub use parallel::{PortfolioConfig, PortfolioStats};
pub use preprocess::{PreprocessConfig, PreprocessStats};
pub use restart::luby;

use crate::clause::{ClauseDb, ClauseRef};
use crate::interrupt::Interrupt;
use crate::model::Model;
use crate::proof::ProofSink;
use crate::stats::Stats;
use crate::types::{LBool, Lit, Var};
use etcs_obs::Obs;
use heap::VarHeap;
use parallel::ShareState;

/// Tunable search parameters.
///
/// The defaults reproduce the solver's historical constants; the in-process
/// portfolio perturbs these per worker to diversify the race, and callers
/// needing tighter cancellation latency can shrink
/// [`SolverConfig::poll_interval`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SolverConfig {
    /// How many conflicts pass between [`Interrupt`] polls inside a restart
    /// (rounded up to a power of two; restart boundaries poll
    /// unconditionally). This bounds the latency of a cancellation landing
    /// mid-restart, and the portfolio flushes its learnt-clause exports at
    /// the same cadence.
    pub poll_interval: u64,
    /// VSIDS variable-activity decay factor (0 < decay ≤ 1; smaller decays
    /// focus harder on recent conflicts).
    pub var_decay: f64,
    /// Base conflict limit of the Luby restart sequence.
    pub restart_base: u64,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            poll_interval: 64,
            var_decay: 0.95,
            restart_base: 128,
        }
    }
}

impl SolverConfig {
    /// Bitmask implementing the poll cadence (`poll_interval` rounded up to
    /// a power of two, minus one).
    #[inline]
    fn poll_mask(&self) -> u64 {
        self.poll_interval.next_power_of_two().saturating_sub(1)
    }
}

/// Outcome of a [`Solver::solve`] call.
#[derive(Clone, Debug, PartialEq)]
pub enum SatResult {
    /// A satisfying assignment was found.
    Sat(Model),
    /// The formula is unsatisfiable under the given assumptions.
    ///
    /// `core` is a subset of the assumption literals that is already
    /// inconsistent with the formula (empty when the formula itself is
    /// unsatisfiable without assumptions).
    Unsat {
        /// Failed subset of the assumptions.
        core: Vec<Lit>,
    },
    /// The conflict budget was exhausted before a verdict was reached.
    Unknown,
}

impl SatResult {
    /// `true` for [`SatResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }

    /// `true` for [`SatResult::Unsat`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, SatResult::Unsat { .. })
    }

    /// The model if satisfiable.
    pub fn model(&self) -> Option<&Model> {
        match self {
            SatResult::Sat(m) => Some(m),
            _ => None,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Watcher {
    cref: ClauseRef,
    /// Arbitrary other literal of the clause; if it is already true the
    /// clause is satisfied and the watch scan can skip loading the clause.
    blocker: Lit,
}

const CLAUSE_DECAY: f64 = 0.999;
const RESCALE_LIMIT: f64 = 1e100;

/// A CDCL SAT solver over clauses built from [`Var`]s handed out by
/// [`Solver::new_var`].
///
/// # Examples
///
/// ```
/// use etcs_sat::{Solver, SatResult};
/// let mut s = Solver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause([a.positive(), b.positive()]);
/// s.add_clause([!a.positive()]);
/// match s.solve() {
///     SatResult::Sat(model) => assert!(model.lit_is_true(b.positive())),
///     other => panic!("expected sat, got {other:?}"),
/// }
/// ```
#[derive(Debug)]
pub struct Solver {
    db: ClauseDb,
    /// `watches[l.index()]` lists clauses that must be inspected when literal
    /// `l` becomes true (they watch `!l`).
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<LBool>,
    levels: Vec<u32>,
    reasons: Vec<Option<ClauseRef>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    heap: VarHeap,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    phase: Vec<bool>,
    /// Becomes false once level-0 unsatisfiability is established.
    ok: bool,
    seen: Vec<bool>,
    stats: Stats,
    /// Learnt-clause count that triggers the next database reduction.
    reduce_limit: usize,
    /// Trail length at the last level-0 simplification; the satisfied-clause
    /// scan is skipped while no new level-0 facts have been derived.
    last_simplify_trail: usize,
    /// Trail length up to which level-0 facts have been emitted to the proof
    /// as explicit unit lemmas. Satisfied-clause elimination may delete the
    /// clauses those facts were propagated from, so the facts must be pinned
    /// as lemmas first or later derivations stop being RUP for the checker.
    proof_units: usize,
    conflict_budget: Option<u64>,
    /// Cooperative cancellation token; [`Interrupt::none`] by default, in
    /// which case every poll is a single branch.
    interrupt: Interrupt,
    default_phase: bool,
    /// Tunable search parameters (restart base, decay, poll cadence).
    config: SolverConfig,
    /// When set (≥ 2 threads), `solve`/`solve_with` race diversified worker
    /// clones with clause sharing instead of searching single-threaded.
    portfolio: Option<PortfolioConfig>,
    /// Clause-sharing state while this solver participates in a portfolio
    /// race; `None` outside one, keeping all hooks single branches.
    share: Option<ShareState>,
    /// Cumulative clause-sharing counters across portfolio solves.
    portfolio_stats: PortfolioStats,
    /// Optional DRAT proof logger. `None` (the default) keeps all emission
    /// paths behind a single branch, so solving without a proof is free.
    proof: Option<Box<dyn ProofSink>>,
    /// Observability handle. Disabled by default, in which case every
    /// emission site is a single branch (see `etcs-obs`).
    obs: Obs,
    /// Variables removed by preprocessing (bounded variable elimination).
    /// They never re-enter search; models reassemble their values from
    /// `reconstruction`.
    eliminated: Vec<bool>,
    /// Variables the preprocessor must not eliminate because they outlive
    /// it (assumption/selector literals, variables of later clauses).
    frozen: Vec<bool>,
    /// Witness stack for eliminated variables: `(witness, clause)` entries
    /// walked in reverse by [`Solver::reconstructed_model`] — a stacked
    /// clause left unsatisfied flips its witness literal.
    reconstruction: Vec<(Lit, Vec<Lit>)>,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver with no variables and no clauses.
    pub fn new() -> Self {
        Solver {
            db: ClauseDb::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            levels: Vec::new(),
            reasons: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            heap: VarHeap::new(),
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            phase: Vec::new(),
            ok: true,
            seen: Vec::new(),
            stats: Stats::default(),
            reduce_limit: 2000,
            last_simplify_trail: 0,
            proof_units: 0,
            conflict_budget: None,
            interrupt: Interrupt::none(),
            default_phase: false,
            config: SolverConfig::default(),
            portfolio: None,
            share: None,
            portfolio_stats: PortfolioStats::default(),
            proof: None,
            obs: Obs::disabled(),
            eliminated: Vec::new(),
            frozen: Vec::new(),
            reconstruction: Vec::new(),
        }
    }

    /// Installs an observability handle: every later `solve`/`solve_with`
    /// call is wrapped in a `sat.solve` span (closing with the call's
    /// conflict/propagation/decision deltas and its verdict), restarts emit
    /// `sat.restart` events and learnt-database reductions `sat.reduce`
    /// events. Installing [`Obs::disabled`] (the initial state) turns all
    /// of that back into single branches.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Installs a DRAT proof sink. Must be called **before any clauses are
    /// added**: level-0 simplifications performed while loading are part of
    /// the certificate, and a sink installed later would miss them.
    ///
    /// With a sink installed, every learnt clause (and every clause produced
    /// by level-0 simplification) is emitted as an addition, and every
    /// discarded clause as a deletion, in the order the solver performs them.
    /// When the formula is refuted without assumptions the emitted proof ends
    /// with the empty clause.
    ///
    /// # Panics
    ///
    /// Panics if clauses have already been added.
    pub fn set_proof_sink(&mut self, sink: Box<dyn ProofSink>) {
        assert!(
            self.num_clauses() == 0 && self.trail.is_empty() && self.ok,
            "proof sink must be installed before any clauses are added"
        );
        self.proof = Some(sink);
    }

    /// Removes and returns the proof sink, disabling further logging.
    pub fn take_proof_sink(&mut self) -> Option<Box<dyn ProofSink>> {
        self.proof.take()
    }

    /// `true` while a proof sink is installed.
    pub fn is_proof_logging(&self) -> bool {
        self.proof.is_some()
    }

    #[inline]
    fn proof_add(&mut self, lits: &[Lit]) {
        if let Some(p) = self.proof.as_mut() {
            p.add_clause(lits);
        }
    }

    #[inline]
    fn proof_delete(&mut self, lits: &[Lit]) {
        if let Some(p) = self.proof.as_mut() {
            p.delete_clause(lits);
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(LBool::Undef);
        self.levels.push(0);
        self.reasons.push(None);
        self.activity.push(0.0);
        self.phase.push(self.default_phase);
        self.seen.push(false);
        self.eliminated.push(false);
        self.frozen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap.grow_to(self.assigns.len());
        self.heap.insert(v, &self.activity);
        v
    }

    /// Allocates `n` fresh variables and returns them in order.
    pub fn new_vars(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.new_var()).collect()
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of live clauses (problem + learnt).
    pub fn num_clauses(&self) -> usize {
        self.db.num_problem() + self.db.num_learnt()
    }

    /// Number of live *learnt* clauses — the state an incremental caller
    /// carries from one `solve_with` call into the next.
    pub fn num_learnt_clauses(&self) -> usize {
        self.db.num_learnt()
    }

    /// Cumulative search statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Limits the next `solve` calls to roughly `budget` conflicts
    /// (`None` = unlimited). When exhausted, [`SatResult::Unknown`] is
    /// returned and the solver remains usable.
    ///
    /// The budget is counted per call, from that call's starting conflict
    /// count, so a fixed budget gives every call the same slice. After an
    /// `Unknown` return the trail is rolled back to level 0, no assumption
    /// sticks, and everything learnt during the aborted call stays — a
    /// later call (with a larger budget, or `None`) resumes from strictly
    /// more information. The portfolio racer in `etcs-core` leans on this
    /// to poll a cancellation flag between budget slices.
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.conflict_budget = budget;
    }

    /// Installs a cooperative cancellation token, polled at restart
    /// boundaries and every few dozen conflicts. Once the token fires,
    /// `solve`/`solve_with` return [`SatResult::Unknown`] with the same
    /// guarantees as conflict-budget exhaustion: the trail is rolled back
    /// to level 0, no assumption sticks, learnt clauses are kept, and the
    /// solver remains usable. Probe the token afterwards to distinguish
    /// cancellation from an expired deadline (or from a plain budget
    /// `Unknown`). Install [`Interrupt::none`] to detach.
    pub fn set_interrupt(&mut self, interrupt: Interrupt) {
        self.interrupt = interrupt;
    }

    /// The installed cancellation token ([`Interrupt::none`] by default).
    pub fn interrupt(&self) -> &Interrupt {
        &self.interrupt
    }

    /// Replaces the tunable search parameters. Takes effect from the next
    /// `solve`/`solve_with` call; solver state (clauses, activities, phases)
    /// is untouched.
    pub fn set_config(&mut self, config: SolverConfig) {
        self.config = config;
    }

    /// The current search parameters.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Enables (or, with `None`, disables) the in-process clause-sharing
    /// portfolio: subsequent `solve`/`solve_with` calls race
    /// [`PortfolioConfig::threads`] diversified worker clones of this solver
    /// on the same formula, exchanging small-LBD learnt clauses, with
    /// first-finisher-wins cancellation of the siblings. Verdicts (and
    /// unsat cores' validity) are identical to a single-threaded solve;
    /// only the witness model may differ.
    ///
    /// Ignored (single-threaded search) while `threads < 2` or while a
    /// proof sink is installed — imported clauses have no local derivation,
    /// so a portfolio solve cannot be DRAT-certified.
    pub fn set_portfolio(&mut self, portfolio: Option<PortfolioConfig>) {
        self.portfolio = portfolio;
    }

    /// The configured portfolio, if any.
    pub fn portfolio(&self) -> Option<&PortfolioConfig> {
        self.portfolio.as_ref()
    }

    /// Cumulative clause-sharing counters over every portfolio solve this
    /// solver ran (all zero while the portfolio never engaged).
    pub fn portfolio_stats(&self) -> &PortfolioStats {
        &self.portfolio_stats
    }

    /// Sets the phase a variable is first tried with (`false` by default,
    /// which suits sparse encodings such as the ETCS occupancy variables).
    pub fn set_default_phase(&mut self, phase: bool) {
        self.default_phase = phase;
    }

    /// Sets the saved phase of one variable (the value it is first decided
    /// to). Encoders use this to steer the search towards likely-satisfiable
    /// regions, e.g. "all VSS borders active".
    pub fn set_phase(&mut self, v: Var, phase: bool) {
        self.phase[v.index()] = phase;
    }

    /// Adds `amount` to a variable's branching activity. Encoders use this
    /// to seed a domain-aware decision order (e.g. structural variables
    /// first, early time steps before late ones); VSIDS takes over as
    /// conflicts accumulate.
    pub fn boost_activity(&mut self, v: Var, amount: f64) {
        self.activity[v.index()] += amount;
        if self.activity[v.index()] > RESCALE_LIMIT {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.update(v, &self.activity);
    }

    /// Adds a clause (a disjunction of literals).
    ///
    /// Returns `false` if the formula is now unsatisfiable at level 0 (an
    /// empty clause arose); the solver stays in that state and further
    /// `solve` calls return `Unsat`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if a literal references a variable that was not
    /// created by [`Solver::new_var`] on this solver.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) -> bool {
        debug_assert_eq!(self.decision_level(), 0, "clauses are added at level 0");
        if !self.ok {
            return false;
        }
        let mut lits: Vec<Lit> = lits.into_iter().collect();
        for &l in &lits {
            debug_assert!(
                l.var().index() < self.num_vars(),
                "literal {l:?} uses an unallocated variable"
            );
            debug_assert!(
                !self.eliminated[l.var().index()],
                "literal {l:?} uses a variable eliminated by preprocessing; \
                 freeze it before calling preprocess"
            );
        }
        lits.sort_unstable();
        lits.dedup();
        let original = if self.proof.is_some() {
            Some(lits.clone())
        } else {
            None
        };
        // Tautology / level-0 simplification.
        let mut write = 0;
        for read in 0..lits.len() {
            let l = lits[read];
            if read + 1 < lits.len() && lits[read + 1] == !l {
                return true; // tautology: contains l and !l (adjacent after sort)
            }
            match self.lit_value(l) {
                LBool::True => return true, // already satisfied at level 0
                LBool::False => {}          // drop falsified literal
                LBool::Undef => {
                    lits[write] = l;
                    write += 1;
                }
            }
        }
        lits.truncate(write);
        // Stripping level-0 falsified literals produced a stronger clause: it
        // is RUP (the dropped literals' negations are propagation-derivable),
        // so certify the stripped clause and retire the original — the
        // proof's active set must mirror the clause database.
        if let Some(orig) = original.filter(|o| o.len() != lits.len()) {
            self.proof_add(&lits);
            self.proof_delete(&orig);
        }
        match lits.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(lits[0], None);
                if self.propagate().is_some() {
                    self.proof_add(&[]);
                    self.ok = false;
                    false
                } else {
                    true
                }
            }
            _ => {
                let cref = self.db.push(lits, false, 0);
                self.attach(cref);
                true
            }
        }
    }

    /// Convenience for adding many clauses; returns `false` if any addition
    /// made the formula level-0 unsatisfiable.
    pub fn add_clauses<I, C>(&mut self, clauses: I) -> bool
    where
        I: IntoIterator<Item = C>,
        C: IntoIterator<Item = Lit>,
    {
        let mut ok = true;
        for c in clauses {
            ok &= self.add_clause(c);
        }
        ok
    }

    /// Solves the current formula without assumptions.
    pub fn solve(&mut self) -> SatResult {
        self.solve_with(&[])
    }

    /// Solves under the given assumption literals.
    ///
    /// On `Unsat`, the returned `core` is a subset of `assumptions` that is
    /// jointly inconsistent with the formula. The solver state (clauses,
    /// activities, learnt clauses) is preserved across calls, enabling
    /// incremental use by the MaxSAT layer and the incremental optimisation
    /// loop of `etcs-core`.
    ///
    /// # Assumption scope
    ///
    /// Assumptions are **per call**, in the MiniSat tradition: they are
    /// decided (in order) before any free branching, never asserted as
    /// clauses, and fully retracted before this method returns — the trail
    /// is rolled back to decision level 0 on every exit path. Consequently:
    ///
    /// * an assumption from a previous call never constrains the next
    ///   call's model (pass it again if you still want it),
    /// * a returned `core` only ever mentions literals from *this* call's
    ///   `assumptions` slice,
    /// * [`Solver::lit_value`] afterwards reports only facts fixed by the
    ///   formula itself, never a stale assumption,
    /// * clauses *learnt* while assumptions were active are consequences of
    ///   the formula alone (analysis stops at assumption decisions and
    ///   encodes them as clause literals), so keeping them for later calls
    ///   is sound — this is what makes selector-guarded deadline probing
    ///   cheap.
    ///
    /// The `assumption_literals_do_not_leak_across_calls` regression test
    /// in `tests/regression.rs` pins this contract.
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> SatResult {
        if !self.obs.is_enabled() {
            return self.solve_dispatch(assumptions);
        }
        let before = self.stats;
        let span = self
            .obs
            .span_with("sat.solve", &[("assumptions", assumptions.len().into())]);
        let result = self.solve_dispatch(assumptions);
        let verdict = match &result {
            SatResult::Sat(_) => "sat",
            SatResult::Unsat { .. } => "unsat",
            SatResult::Unknown => "unknown",
        };
        span.close_with(&[
            ("result", verdict.into()),
            (
                "conflicts",
                (self.stats.conflicts - before.conflicts).into(),
            ),
            (
                "propagations",
                (self.stats.propagations - before.propagations).into(),
            ),
            (
                "decisions",
                (self.stats.decisions - before.decisions).into(),
            ),
            ("restarts", (self.stats.restarts - before.restarts).into()),
        ]);
        result
    }

    /// Routes a solve to the portfolio race when one is configured and
    /// eligible (≥ 2 threads, no proof sink), otherwise to the ordinary
    /// single-threaded search.
    fn solve_dispatch(&mut self, assumptions: &[Lit]) -> SatResult {
        match self.portfolio {
            Some(cfg) if cfg.threads >= 2 && self.proof.is_none() => {
                self.solve_portfolio(assumptions, cfg)
            }
            _ => self.solve_with_inner(assumptions),
        }
    }

    fn solve_with_inner(&mut self, assumptions: &[Lit]) -> SatResult {
        for &a in assumptions {
            debug_assert!(
                !self.eliminated[a.var().index()],
                "assumption {a:?} uses a variable eliminated by preprocessing; \
                 freeze it before calling preprocess"
            );
        }
        self.stats.solve_calls += 1;
        if self.stats.solve_calls > 1 {
            self.stats.reused_learnts += self.db.num_learnt() as u64;
        }
        if !self.ok {
            return SatResult::Unsat { core: Vec::new() };
        }
        debug_assert_eq!(self.decision_level(), 0);
        if self.propagate().is_some() {
            self.proof_add(&[]);
            self.ok = false;
            return SatResult::Unsat { core: Vec::new() };
        }
        // Size the learnt-clause budget to the problem: tiny limits thrash
        // on large encodings.
        self.reduce_limit = self.reduce_limit.max(self.db.num_problem() / 2);
        let budget_start = self.stats.conflicts;
        let mut restart_num = 0u64;
        loop {
            // Restart-boundary poll: catches tokens triggered before the
            // call as well as deadlines expiring between restarts.
            if self.interrupt.is_triggered() {
                self.cancel_until(0);
                return SatResult::Unknown;
            }
            restart_num += 1;
            let limit = self.config.restart_base.saturating_mul(luby(restart_num));
            match self.search(assumptions, limit, budget_start) {
                SearchOutcome::Sat => {
                    let model = self.reconstructed_model();
                    self.cancel_until(0);
                    return SatResult::Sat(model);
                }
                SearchOutcome::Unsat(core) => {
                    self.cancel_until(0);
                    return SatResult::Unsat { core };
                }
                SearchOutcome::Restart => {
                    self.stats.restarts += 1;
                    self.obs.event(
                        "sat.restart",
                        &[
                            ("conflicts", self.stats.conflicts.into()),
                            ("learnt", self.db.num_learnt().into()),
                        ],
                    );
                    self.cancel_until(0);
                    self.simplify_and_maybe_reduce();
                    if !self.ok {
                        return SatResult::Unsat { core: Vec::new() };
                    }
                    // Portfolio sync point: flush buffered exports and
                    // absorb siblings' learnt clauses at level 0.
                    if self.share.is_some() {
                        self.share_sync();
                        if !self.ok {
                            return SatResult::Unsat { core: Vec::new() };
                        }
                    }
                }
                SearchOutcome::BudgetExhausted | SearchOutcome::Interrupted => {
                    self.cancel_until(0);
                    return SatResult::Unknown;
                }
            }
        }
    }

    /// Current value of a literal under the partial/level-0 assignment.
    ///
    /// After `solve` returned, the trail is rolled back to level 0, so this
    /// reports only facts fixed by the formula itself.
    pub fn lit_value(&self, l: Lit) -> LBool {
        let v = self.assigns[l.var().index()];
        if l.is_positive() {
            v
        } else {
            v.negate()
        }
    }

    /// `true` once the formula is known unsatisfiable at level 0.
    pub fn is_conflicting(&self) -> bool {
        !self.ok
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn attach(&mut self, cref: ClauseRef) {
        let (w0, w1) = {
            let c = self.db.get(cref);
            (c.lits()[0], c.lits()[1])
        };
        self.watches[(!w0).index()].push(Watcher { cref, blocker: w1 });
        self.watches[(!w1).index()].push(Watcher { cref, blocker: w0 });
    }

    #[inline]
    fn enqueue(&mut self, p: Lit, reason: Option<ClauseRef>) {
        debug_assert_eq!(self.lit_value(p), LBool::Undef);
        let v = p.var().index();
        self.assigns[v] = LBool::from_bool(p.is_positive());
        self.levels[v] = self.decision_level();
        self.reasons[v] = reason;
        self.trail.push(p);
    }

    /// Unit propagation; returns the conflicting clause if a conflict arose.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let mut ws = std::mem::take(&mut self.watches[p.index()]);
            let mut i = 0;
            let mut conflict = None;
            'watchers: while i < ws.len() {
                let w = ws[i];
                if self.lit_value(w.blocker) == LBool::True {
                    i += 1;
                    continue;
                }
                if self.db.is_deleted(w.cref) {
                    ws.swap_remove(i);
                    continue;
                }
                // Ensure the falsified watched literal (!p) sits at slot 1.
                let false_lit = !p;
                {
                    let c = self.db.get_mut(w.cref);
                    let lits = c.lits_mut();
                    if lits[0] == false_lit {
                        lits.swap(0, 1);
                    }
                    debug_assert_eq!(lits[1], false_lit);
                }
                let first = self.db.get(w.cref).lits()[0];
                if self.lit_value(first) == LBool::True {
                    ws[i].blocker = first;
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.db.get(w.cref).len();
                for k in 2..len {
                    let cand = self.db.get(w.cref).lits()[k];
                    if self.lit_value(cand) != LBool::False {
                        let c = self.db.get_mut(w.cref);
                        c.lits_mut().swap(1, k);
                        self.watches[(!cand).index()].push(Watcher {
                            cref: w.cref,
                            blocker: first,
                        });
                        ws.swap_remove(i);
                        continue 'watchers;
                    }
                }
                // No replacement: unit or conflicting.
                if self.lit_value(first) == LBool::False {
                    conflict = Some(w.cref);
                    self.qhead = self.trail.len();
                    break;
                }
                self.enqueue(first, Some(w.cref));
                i += 1;
            }
            self.watches[p.index()] = ws;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    fn cancel_until(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let bound = self.trail_lim[level as usize];
        for i in (bound..self.trail.len()).rev() {
            let p = self.trail[i];
            let v = p.var();
            self.phase[v.index()] = p.is_positive();
            self.assigns[v.index()] = LBool::Undef;
            self.reasons[v.index()] = None;
            self.heap.insert(v, &self.activity);
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(level as usize);
        self.qhead = bound;
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > RESCALE_LIMIT {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.update(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        let inc = self.cla_inc;
        let c = self.db.get_mut(cref);
        c.activity += inc;
        if c.activity > RESCALE_LIMIT {
            let refs: Vec<ClauseRef> = self.db.learnt_refs();
            for r in refs {
                self.db.get_mut(r).activity *= 1e-100;
            }
            self.cla_inc *= 1e-100;
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= self.config.var_decay;
        self.cla_inc /= CLAUSE_DECAY;
    }

    /// First-UIP conflict analysis.
    ///
    /// Returns the learnt clause (asserting literal first), the backtrack
    /// level, and the clause's literal-block distance.
    fn analyze(&mut self, conflict: ClauseRef) -> (Vec<Lit>, u32, u32) {
        let mut learnt: Vec<Lit> = Vec::with_capacity(8);
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut cref = conflict;
        let current_level = self.decision_level();

        loop {
            self.bump_clause(cref);
            let lits: Vec<Lit> = self.db.get(cref).lits().to_vec();
            for q in lits {
                // Skip the implied literal itself when traversing its reason.
                if Some(q) == p {
                    continue;
                }
                let v = q.var();
                if !self.seen[v.index()] && self.levels[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.levels[v.index()] >= current_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Next marked literal on the trail.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            self.seen[lit.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                p = Some(lit);
                break;
            }
            p = Some(lit);
            cref = self.reasons[lit.var().index()]
                .expect("non-decision literal on conflict side must have a reason");
        }

        let asserting = !p.expect("analysis always reaches the first UIP");
        // Clause minimisation: drop literals whose reason is subsumed by the
        // remainder of the learnt clause (one-step self-subsumption).
        for &l in &learnt {
            self.seen[l.var().index()] = true;
        }
        let minimised: Vec<Lit> = learnt
            .iter()
            .copied()
            .filter(|&l| !self.literal_redundant(l))
            .collect();
        for &l in &learnt {
            self.seen[l.var().index()] = false;
        }
        let mut learnt = minimised;
        self.stats.learnt_literals += learnt.len() as u64 + 1;

        // Backtrack level = highest level among the non-asserting literals.
        let bt_level = learnt
            .iter()
            .map(|l| self.levels[l.var().index()])
            .max()
            .unwrap_or(0);
        // Move a literal of bt_level to slot 1 (second watch invariant).
        let mut out = Vec::with_capacity(learnt.len() + 1);
        out.push(asserting);
        if let Some(pos) = learnt
            .iter()
            .position(|l| self.levels[l.var().index()] == bt_level)
        {
            learnt.swap(0, pos);
        }
        out.extend(learnt);

        // LBD = number of distinct decision levels in the clause.
        let mut lvls: Vec<u32> = out.iter().map(|l| self.levels[l.var().index()]).collect();
        lvls.sort_unstable();
        lvls.dedup();
        let lbd = lvls.len() as u32;

        (out, bt_level, lbd)
    }

    /// One-step redundancy check for clause minimisation: `l` is redundant if
    /// it was implied by literals that are all already in the learnt clause
    /// (or fixed at level 0).
    fn literal_redundant(&self, l: Lit) -> bool {
        match self.reasons[l.var().index()] {
            None => false,
            Some(r) => self.db.get(r).lits().iter().all(|&q| {
                q.var() == l.var()
                    || self.seen[q.var().index()]
                    || self.levels[q.var().index()] == 0
            }),
        }
    }

    /// Computes the subset of assumptions responsible for forcing `!failed`.
    fn analyze_final(&mut self, failed: Lit) -> Vec<Lit> {
        let mut core = vec![failed];
        if self.decision_level() == 0 {
            return core;
        }
        self.seen[failed.var().index()] = true;
        let start = self.trail_lim[0];
        for i in (start..self.trail.len()).rev() {
            let q = self.trail[i];
            let v = q.var().index();
            if !self.seen[v] {
                continue;
            }
            match self.reasons[v] {
                None => {
                    // Decision ⇒ an assumption literal (all decisions below
                    // the assumption boundary are assumptions). This also
                    // covers the opposite phase of the failed assumption's
                    // own variable, which is itself an assumption when two
                    // contradictory assumptions are passed.
                    core.push(q);
                }
                Some(r) => {
                    let lits: Vec<Lit> = self.db.get(r).lits().to_vec();
                    for x in lits {
                        if self.levels[x.var().index()] > 0 {
                            self.seen[x.var().index()] = true;
                        }
                    }
                }
            }
            self.seen[v] = false;
        }
        self.seen[failed.var().index()] = false;
        core
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.heap.pop_max(&self.activity) {
            if self.assigns[v.index()] == LBool::Undef && !self.eliminated[v.index()] {
                return Some(v);
            }
        }
        None
    }

    /// Builds the model for the full assignment, then walks the
    /// reconstruction stack in reverse: each entry whose clause the model
    /// does not yet satisfy flips its witness literal. This reassembles
    /// exact values for preprocessing-eliminated variables, so the model
    /// satisfies the *original* formula, not just the preprocessed one.
    fn reconstructed_model(&self) -> Model {
        if self.reconstruction.is_empty() {
            return Model::from_assignments(&self.assigns);
        }
        let mut values: Vec<bool> = self.assigns.iter().map(|&a| a == LBool::True).collect();
        for (witness, clause) in self.reconstruction.iter().rev() {
            let satisfied = clause
                .iter()
                .any(|&l| values[l.var().index()] == l.is_positive());
            if !satisfied {
                values[witness.var().index()] = witness.is_positive();
            }
        }
        Model::from_values(values)
    }

    fn search(
        &mut self,
        assumptions: &[Lit],
        conflict_limit: u64,
        budget_start: u64,
    ) -> SearchOutcome {
        let mut conflicts_here = 0u64;
        let poll_mask = self.config.poll_mask();
        loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_here += 1;
                if self.decision_level() == 0 {
                    self.proof_add(&[]);
                    self.ok = false;
                    return SearchOutcome::Unsat(Vec::new());
                }
                let (learnt, bt_level, lbd) = self.analyze(conflict);
                self.cancel_until(bt_level);
                self.proof_add(&learnt);
                if self.share.is_some() {
                    self.share_export(&learnt, lbd);
                }
                if learnt.len() == 1 {
                    debug_assert_eq!(bt_level, 0);
                    self.enqueue(learnt[0], None);
                } else {
                    let asserting = learnt[0];
                    let cref = self.db.push(learnt, true, lbd);
                    self.attach(cref);
                    self.enqueue(asserting, Some(cref));
                }
                self.decay_activities();
                if let Some(budget) = self.conflict_budget {
                    if self.stats.conflicts - budget_start >= budget {
                        return SearchOutcome::BudgetExhausted;
                    }
                }
                if conflicts_here & poll_mask == 0 {
                    // Same cadence as the interrupt poll: make buffered
                    // exports visible to siblings even mid-restart, and do
                    // so before bailing out so a cancelled worker's last
                    // lemmas still reach the winner.
                    if self.share.is_some() {
                        self.share_flush_exports();
                    }
                    if self.interrupt.is_triggered() {
                        return SearchOutcome::Interrupted;
                    }
                }
                if conflicts_here >= conflict_limit {
                    return SearchOutcome::Restart;
                }
            } else {
                // Assumption decisions come first.
                if (self.decision_level() as usize) < assumptions.len() {
                    let p = assumptions[self.decision_level() as usize];
                    match self.lit_value(p) {
                        LBool::True => {
                            // Already implied: open a dummy level so the
                            // assumption index keeps advancing.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => {
                            let core = self.analyze_final(p);
                            return SearchOutcome::Unsat(core);
                        }
                        LBool::Undef => {
                            self.stats.decisions += 1;
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(p, None);
                        }
                    }
                    continue;
                }
                match self.pick_branch_var() {
                    None => return SearchOutcome::Sat,
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let lit = v.lit(self.phase[v.index()]);
                        self.enqueue(lit, None);
                    }
                }
            }
        }
    }

    /// Level-0 housekeeping performed between restarts: removes satisfied
    /// clauses, strips falsified literals, and if the learnt database grew
    /// past the limit deletes the less valuable half.
    ///
    /// The satisfied-clause scan only runs when new level-0 facts appeared
    /// since the last call, so restarts stay cheap.
    fn simplify_and_maybe_reduce(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        // A unit clause learnt on the restart-triggering conflict is enqueued
        // but not yet propagated when the restart fires; settle it before
        // housekeeping (it may even reveal level-0 unsatisfiability).
        if self.propagate().is_some() {
            self.proof_add(&[]);
            self.ok = false;
            return;
        }
        // Reasons of level-0 assignments are never inspected again.
        for &p in &self.trail {
            self.reasons[p.var().index()] = None;
        }
        let mut changed = false;
        let mut units: Vec<Lit> = Vec::new();
        if self.trail.len() > self.last_simplify_trail {
            self.last_simplify_trail = self.trail.len();
            changed = true;
            units = match self.remove_satisfied() {
                Some(units) => units,
                None => return, // level-0 conflict found
            };
        }
        if self.db.num_learnt() > self.reduce_limit {
            self.reduce_learnt();
            self.reduce_limit += self.reduce_limit / 2;
            changed = true;
        }
        if changed {
            // Watches must be consistent before the recovered units are
            // propagated, otherwise their implications would be lost.
            self.rebuild_watches();
        }
        for u in units {
            match self.lit_value(u) {
                LBool::False => {
                    self.proof_add(&[]);
                    self.ok = false;
                    return;
                }
                LBool::Undef => self.enqueue(u, None),
                LBool::True => {}
            }
        }
        if self.propagate().is_some() {
            self.proof_add(&[]);
            self.ok = false;
            return;
        }
        self.last_simplify_trail = self.last_simplify_trail.max(self.trail.len());
    }

    /// Deletes clauses satisfied at level 0 and strips falsified literals.
    /// Returns the recovered unit literals, or `None` on a level-0 conflict
    /// (an empty clause).
    fn remove_satisfied(&mut self) -> Option<Vec<Lit>> {
        // Pin every new level-0 fact as an explicit unit lemma before any
        // clause it was propagated from is deleted: a clause that implied
        // the fact contains it, is therefore satisfied, and is about to be
        // removed — without the unit lemma, later derivations relying on
        // the fact would no longer be RUP for the proof checker.
        if self.proof.is_some() {
            for i in self.proof_units..self.trail.len() {
                let l = self.trail[i];
                self.proof_add(&[l]);
            }
            self.proof_units = self.trail.len();
        }
        let refs: Vec<ClauseRef> = self.db.iter_refs().collect();
        let mut units: Vec<Lit> = Vec::new();
        for r in refs {
            let original = if self.proof.is_some() {
                Some(self.db.get(r).lits().to_vec())
            } else {
                None
            };
            let mut satisfied = false;
            let mut k = 0;
            while k < self.db.get(r).len() {
                let l = self.db.get(r).lits()[k];
                match self.lit_value(l) {
                    LBool::True => {
                        satisfied = true;
                        break;
                    }
                    LBool::False => {
                        self.db.get_mut(r).swap_remove(k);
                    }
                    LBool::Undef => k += 1,
                }
            }
            if satisfied {
                if let Some(orig) = original {
                    self.proof_delete(&orig);
                }
                self.db.delete(r);
                continue;
            }
            // Literal stripping strengthened the clause: certify the
            // stripped version (RUP via the level-0 facts) and retire the
            // original. For recovered units (and the empty clause) the
            // strengthened lemma stays in the proof's active set even though
            // the database slot is released.
            if let Some(orig) = original.filter(|o| o.len() != self.db.get(r).len()) {
                let now = self.db.get(r).lits().to_vec();
                self.proof_add(&now);
                self.proof_delete(&orig);
            }
            match self.db.get(r).len() {
                0 => {
                    self.ok = false;
                    return None;
                }
                1 => {
                    units.push(self.db.get(r).lits()[0]);
                    self.db.delete(r);
                }
                _ => {}
            }
        }
        Some(units)
    }

    /// Deletes the worse half of learnt clauses (high LBD, low activity).
    /// Glue clauses (LBD <= 2) are always kept.
    fn reduce_learnt(&mut self) {
        let deleted_before = self.stats.deleted_clauses;
        let mut learnt = self.db.learnt_refs();
        learnt.sort_by(|&a, &b| {
            let ca = self.db.get(a);
            let cb = self.db.get(b);
            ca.lbd.cmp(&cb.lbd).then(
                cb.activity
                    .partial_cmp(&ca.activity)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        let keep = learnt.len() / 2;
        for &r in learnt.iter().skip(keep) {
            if self.db.get(r).lbd <= 2 {
                continue;
            }
            if self.proof.is_some() {
                let lits = self.db.get(r).lits().to_vec();
                self.proof_delete(&lits);
            }
            self.db.delete(r);
            self.stats.deleted_clauses += 1;
        }
        self.obs.event(
            "sat.reduce",
            &[
                (
                    "deleted",
                    (self.stats.deleted_clauses - deleted_before).into(),
                ),
                ("kept", self.db.num_learnt().into()),
            ],
        );
    }

    fn rebuild_watches(&mut self) {
        for w in &mut self.watches {
            w.clear();
        }
        let refs: Vec<ClauseRef> = self.db.iter_refs().collect();
        for r in refs {
            debug_assert!(self.db.get(r).len() >= 2);
            self.attach(r);
        }
    }
}

enum SearchOutcome {
    Sat,
    Unsat(Vec<Lit>),
    Restart,
    BudgetExhausted,
    Interrupted,
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;

    fn lit(s: &mut Solver) -> Lit {
        s.new_var().positive()
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert!(s.solve().is_sat());
    }

    #[test]
    fn single_unit() {
        let mut s = Solver::new();
        let a = lit(&mut s);
        s.add_clause([a]);
        match s.solve() {
            SatResult::Sat(m) => assert!(m.lit_is_true(a)),
            other => panic!("expected sat: {other:?}"),
        }
    }

    #[test]
    fn contradictory_units_unsat() {
        let mut s = Solver::new();
        let a = lit(&mut s);
        s.add_clause([a]);
        assert!(!s.add_clause([!a]));
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn chain_of_implications() {
        let mut s = Solver::new();
        let vars: Vec<Lit> = (0..20).map(|_| lit(&mut s)).collect();
        for w in vars.windows(2) {
            s.add_clause([!w[0], w[1]]);
        }
        s.add_clause([vars[0]]);
        match s.solve() {
            SatResult::Sat(m) => {
                for &v in &vars {
                    assert!(m.lit_is_true(v));
                }
            }
            other => panic!("expected sat: {other:?}"),
        }
    }

    #[test]
    fn simple_unsat_triangle() {
        // (a ∨ b) ∧ (¬a ∨ b) ∧ (a ∨ ¬b) ∧ (¬a ∨ ¬b)
        let mut s = Solver::new();
        let a = lit(&mut s);
        let b = lit(&mut s);
        s.add_clause([a, b]);
        s.add_clause([!a, b]);
        s.add_clause([a, !b]);
        s.add_clause([!a, !b]);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn tautology_is_ignored() {
        let mut s = Solver::new();
        let a = lit(&mut s);
        assert!(s.add_clause([a, !a]));
        assert!(s.solve().is_sat());
    }

    #[test]
    fn duplicate_literals_are_merged() {
        let mut s = Solver::new();
        let a = lit(&mut s);
        let b = lit(&mut s);
        s.add_clause([a, a, b, b]);
        s.add_clause([!a]);
        match s.solve() {
            SatResult::Sat(m) => assert!(m.lit_is_true(b)),
            other => panic!("expected sat: {other:?}"),
        }
    }

    #[test]
    fn assumptions_sat_and_unsat_with_core() {
        let mut s = Solver::new();
        let a = lit(&mut s);
        let b = lit(&mut s);
        let c = lit(&mut s);
        s.add_clause([!a, !b]); // a ∧ b impossible
        s.add_clause([c]);
        assert!(s.solve_with(&[a]).is_sat());
        assert!(s.solve_with(&[b]).is_sat());
        match s.solve_with(&[a, b]) {
            SatResult::Unsat { core } => {
                assert!(!core.is_empty());
                assert!(core.iter().all(|l| *l == a || *l == b));
            }
            other => panic!("expected unsat: {other:?}"),
        }
        // Solver is still usable afterwards.
        assert!(s.solve().is_sat());
    }

    #[test]
    fn core_excludes_irrelevant_assumptions() {
        let mut s = Solver::new();
        let a = lit(&mut s);
        let b = lit(&mut s);
        let junk: Vec<Lit> = (0..5).map(|_| lit(&mut s)).collect();
        s.add_clause([!a, !b]);
        let mut assumptions = junk.clone();
        assumptions.push(a);
        assumptions.push(b);
        match s.solve_with(&assumptions) {
            SatResult::Unsat { core } => {
                for j in junk {
                    assert!(!core.contains(&j), "irrelevant assumption in core");
                }
            }
            other => panic!("expected unsat: {other:?}"),
        }
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // PHP(3,2): 3 pigeons, 2 holes.
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..3)
            .map(|_| (0..2).map(|_| lit(&mut s)).collect())
            .collect();
        for row in &p {
            s.add_clause(row.iter().copied());
        }
        for h in 0..2 {
            for i in 0..3 {
                for j in (i + 1)..3 {
                    s.add_clause([!p[i][h], !p[j][h]]);
                }
            }
        }
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn pigeonhole_5_into_4_unsat() {
        let n = 5usize;
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..n)
            .map(|_| (0..n - 1).map(|_| lit(&mut s)).collect())
            .collect();
        for row in &p {
            s.add_clause(row.iter().copied());
        }
        for h in 0..n - 1 {
            for i in 0..n {
                for j in (i + 1)..n {
                    s.add_clause([!p[i][h], !p[j][h]]);
                }
            }
        }
        assert!(s.solve().is_unsat());
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn incremental_solving_reuses_state() {
        let mut s = Solver::new();
        let a = lit(&mut s);
        let b = lit(&mut s);
        s.add_clause([a, b]);
        assert!(s.solve().is_sat());
        s.add_clause([!a]);
        match s.solve() {
            SatResult::Sat(m) => assert!(m.lit_is_true(b)),
            other => panic!("expected sat: {other:?}"),
        }
        s.add_clause([!b]);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn conflict_budget_returns_unknown_or_verdict() {
        // A hard instance with a tiny budget must not loop forever.
        let n = 8usize;
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..n)
            .map(|_| (0..n - 1).map(|_| lit(&mut s)).collect())
            .collect();
        for row in &p {
            s.add_clause(row.iter().copied());
        }
        for h in 0..n - 1 {
            for i in 0..n {
                for j in (i + 1)..n {
                    s.add_clause([!p[i][h], !p[j][h]]);
                }
            }
        }
        s.set_conflict_budget(Some(10));
        let r = s.solve();
        assert!(matches!(r, SatResult::Unknown | SatResult::Unsat { .. }));
    }

    #[test]
    fn budget_sliced_solving_reaches_the_same_verdict() {
        // Solver-state reuse audit: repeatedly solving with a tiny conflict
        // budget must converge to the exact verdict an unbudgeted solve
        // gives, because learnt clauses persist across Unknown returns.
        let n = 7usize;
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..n)
            .map(|_| (0..n - 1).map(|_| lit(&mut s)).collect())
            .collect();
        for row in &p {
            s.add_clause(row.iter().copied());
        }
        for h in 0..n - 1 {
            for i in 0..n {
                for j in (i + 1)..n {
                    s.add_clause([!p[i][h], !p[j][h]]);
                }
            }
        }
        s.set_conflict_budget(Some(50));
        let mut slices = 0usize;
        let verdict = loop {
            slices += 1;
            assert!(slices < 10_000, "budget-sliced loop must terminate");
            match s.solve() {
                SatResult::Unknown => continue,
                verdict => break verdict,
            }
        };
        assert!(verdict.is_unsat(), "pigeonhole is unsatisfiable");
        assert!(slices > 1, "the budget must actually slice the search");
        // And the solver is still usable without a budget.
        s.set_conflict_budget(None);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn pre_triggered_interrupt_returns_unknown_and_solver_stays_usable() {
        let mut s = Solver::new();
        let a = lit(&mut s);
        let b = lit(&mut s);
        s.add_clause([a, b]);
        let token = crate::Interrupt::new();
        token.trigger();
        s.set_interrupt(token);
        assert_eq!(s.solve(), SatResult::Unknown);
        // Detaching the token restores normal solving on the same state.
        s.set_interrupt(crate::Interrupt::none());
        assert!(s.solve().is_sat());
    }

    #[test]
    fn tighter_poll_interval_still_returns_unknown_with_state_intact() {
        // With a huge restart base there are no restart-boundary polls, so
        // only the per-conflict poll can observe the deadline; shrink it to
        // every conflict and interrupt a hard instance mid-restart.
        let n = 8usize;
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..n)
            .map(|_| (0..n - 1).map(|_| lit(&mut s)).collect())
            .collect();
        for row in &p {
            s.add_clause(row.iter().copied());
        }
        for h in 0..n - 1 {
            for i in 0..n {
                for j in (i + 1)..n {
                    s.add_clause([!p[i][h], !p[j][h]]);
                }
            }
        }
        assert_eq!(s.config().poll_interval, 64, "documented default");
        s.set_config(SolverConfig {
            poll_interval: 1,
            restart_base: u64::MAX,
            ..SolverConfig::default()
        });
        let token = crate::Interrupt::with_deadline(std::time::Duration::from_millis(5));
        s.set_interrupt(token.clone());
        let first = s.solve();
        if first != SatResult::Unknown {
            // The instance finished inside the deadline on this machine;
            // nothing left to observe.
            return;
        }
        assert_eq!(
            token.probe(),
            Some(crate::InterruptReason::DeadlineExceeded)
        );
        // State intact: the trail is back at level 0, learnt clauses are
        // kept, and the same solver still reaches the verdict.
        assert!(
            s.num_learnt_clauses() > 0,
            "interrupted call learnt nothing"
        );
        s.set_interrupt(crate::Interrupt::none());
        s.set_config(SolverConfig::default());
        assert!(s.solve().is_unsat(), "pigeonhole is unsatisfiable");
    }

    #[test]
    fn interrupt_mid_search_keeps_verdict_reachable() {
        // Interrupt a hard instance after some conflicts, then finish it:
        // learnt clauses must survive the aborted call.
        let n = 7usize;
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..n)
            .map(|_| (0..n - 1).map(|_| lit(&mut s)).collect())
            .collect();
        for row in &p {
            s.add_clause(row.iter().copied());
        }
        for h in 0..n - 1 {
            for i in 0..n {
                for j in (i + 1)..n {
                    s.add_clause([!p[i][h], !p[j][h]]);
                }
            }
        }
        let token = crate::Interrupt::with_deadline(std::time::Duration::ZERO);
        s.set_interrupt(token.clone());
        assert_eq!(s.solve(), SatResult::Unknown);
        assert_eq!(
            token.probe(),
            Some(crate::InterruptReason::DeadlineExceeded)
        );
        s.set_interrupt(crate::Interrupt::none());
        assert!(s.solve().is_unsat(), "pigeonhole is unsatisfiable");
    }

    #[test]
    fn learnt_clause_retention_is_counted_across_calls() {
        // An incremental caller sees reused_learnts grow: clauses learnt in
        // call k are live at the start of call k+1.
        let n = 6usize;
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..n)
            .map(|_| (0..n - 1).map(|_| lit(&mut s)).collect())
            .collect();
        // Hole constraints only: satisfiable, but with conflicts under
        // assumptions forcing all pigeons placed.
        for h in 0..n - 1 {
            for i in 0..n {
                for j in (i + 1)..n {
                    s.add_clause([!p[i][h], !p[j][h]]);
                }
            }
        }
        let sel: Vec<Lit> = (0..n).map(|_| lit(&mut s)).collect();
        for (row, &sl) in p.iter().zip(&sel) {
            let mut clause = vec![!sl];
            clause.extend(row.iter().copied());
            s.add_clause(clause);
        }
        assert!(s.solve_with(&sel).is_unsat());
        assert!(s.stats().conflicts > 0, "the probe must require search");
        assert!(s.num_learnt_clauses() > 0);
        assert_eq!(s.stats().solve_calls, 1);
        assert_eq!(s.stats().reused_learnts, 0, "first call reuses nothing");
        let live = s.num_learnt_clauses() as u64;
        assert!(s.solve_with(&sel[..n - 1]).is_sat());
        assert_eq!(s.stats().solve_calls, 2);
        assert_eq!(
            s.stats().reused_learnts,
            live,
            "second call starts with the first call's lemmas"
        );
    }

    #[test]
    fn obs_spans_mirror_search_statistics() {
        let (obs, sink) = etcs_obs::Obs::memory();
        let n = 6usize;
        let mut s = Solver::new();
        s.set_obs(obs);
        let p: Vec<Vec<Lit>> = (0..n)
            .map(|_| (0..n - 1).map(|_| lit(&mut s)).collect())
            .collect();
        for row in &p {
            s.add_clause(row.iter().copied());
        }
        for h in 0..n - 1 {
            for i in 0..n {
                for j in (i + 1)..n {
                    s.add_clause([!p[i][h], !p[j][h]]);
                }
            }
        }
        assert!(s.solve().is_unsat());
        let events = sink.events();
        let closes: Vec<_> = events
            .iter()
            .filter(|e| e.kind == etcs_obs::EventKind::SpanClose && e.name == "sat.solve")
            .collect();
        assert_eq!(closes.len(), 1, "one solve call, one span");
        let close = closes[0];
        assert_eq!(close.field_str("result"), Some("unsat"));
        assert_eq!(close.field_u64("conflicts"), Some(s.stats().conflicts));
        assert_eq!(
            close.field_u64("propagations"),
            Some(s.stats().propagations)
        );
        let restarts = events.iter().filter(|e| e.name == "sat.restart").count();
        assert_eq!(restarts as u64, s.stats().restarts);
    }

    #[test]
    fn model_respects_all_clauses_random_smoke() {
        // Deterministic pseudo-random 3-SAT instance, checked against the model.
        let num_vars = 30usize;
        let num_clauses = 100usize;
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..num_vars).map(|_| s.new_var()).collect();
        let mut clauses: Vec<Vec<Lit>> = Vec::new();
        for _ in 0..num_clauses {
            let mut c = Vec::new();
            for _ in 0..3 {
                let v = vars[(next() % num_vars as u64) as usize];
                c.push(v.lit(next() % 2 == 0));
            }
            clauses.push(c.clone());
            s.add_clause(c);
        }
        if let SatResult::Sat(m) = s.solve() {
            for c in &clauses {
                assert!(
                    c.iter().any(|&l| m.lit_is_true(l)),
                    "model violates clause {c:?}"
                );
            }
        }
    }
}
