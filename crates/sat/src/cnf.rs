//! Formula construction: clause sinks, a standalone [`Formula`] container,
//! and Tseitin gate helpers.
//!
//! The ETCS encoder builds formulas against the [`CnfSink`] trait so the same
//! encoding code can target an inspectable [`Formula`] (for statistics and
//! DIMACS export) or a [`Solver`](crate::Solver) directly.

use crate::model::Model;
use crate::solver::Solver;
use crate::types::{Lit, Var};

/// Anything clauses can be emitted into: a [`Formula`] or a live
/// [`Solver`](crate::Solver).
pub trait CnfSink {
    /// Allocates a fresh variable.
    fn new_var(&mut self) -> Var;

    /// Adds a clause (disjunction of literals).
    fn add_clause_from(&mut self, lits: &[Lit]);

    /// Allocates `n` fresh variables.
    fn new_vars(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.new_var()).collect()
    }

    /// Emits `a → b`.
    fn implies(&mut self, a: Lit, b: Lit) {
        self.add_clause_from(&[!a, b]);
    }

    /// Emits `(a ∧ b) → c`.
    fn implies2(&mut self, a: Lit, b: Lit, c: Lit) {
        self.add_clause_from(&[!a, !b, c]);
    }

    /// Emits `a → (b₁ ∨ … ∨ bₙ)`.
    fn implies_any(&mut self, a: Lit, bs: &[Lit]) {
        let mut clause = Vec::with_capacity(bs.len() + 1);
        clause.push(!a);
        clause.extend_from_slice(bs);
        self.add_clause_from(&clause);
    }

    /// Emits `a → (b₁ ∧ … ∧ bₙ)` as `n` binary clauses.
    fn implies_all(&mut self, a: Lit, bs: &[Lit]) {
        for &b in bs {
            self.add_clause_from(&[!a, b]);
        }
    }

    /// Emits `a ↔ b`.
    fn iff(&mut self, a: Lit, b: Lit) {
        self.add_clause_from(&[!a, b]);
        self.add_clause_from(&[a, !b]);
    }

    /// Fixes a literal to true.
    fn assert_true(&mut self, l: Lit) {
        self.add_clause_from(&[l]);
    }

    /// Fixes a literal to false.
    fn assert_false(&mut self, l: Lit) {
        self.add_clause_from(&[!l]);
    }

    /// Introduces `y ↔ (i₁ ∧ … ∧ iₙ)` and returns `y`.
    ///
    /// For an empty input list `y` is fixed true (the empty conjunction).
    fn and_gate(&mut self, inputs: &[Lit]) -> Lit {
        let y = self.new_var().positive();
        for &i in inputs {
            self.add_clause_from(&[!y, i]);
        }
        let mut clause: Vec<Lit> = inputs.iter().map(|&i| !i).collect();
        clause.push(y);
        self.add_clause_from(&clause);
        y
    }

    /// Introduces `y ↔ (i₁ ∨ … ∨ iₙ)` and returns `y`.
    ///
    /// For an empty input list `y` is fixed false (the empty disjunction).
    fn or_gate(&mut self, inputs: &[Lit]) -> Lit {
        let y = self.new_var().positive();
        for &i in inputs {
            self.add_clause_from(&[y, !i]);
        }
        let mut clause: Vec<Lit> = inputs.to_vec();
        clause.push(!y);
        self.add_clause_from(&clause);
        y
    }

    /// Emits `l₁ ∨ … ∨ lₙ` (at least one).
    fn at_least_one(&mut self, lits: &[Lit]) {
        self.add_clause_from(lits);
    }

    /// Emits pairwise `¬(lᵢ ∧ lⱼ)` (at most one). Quadratic; fine for the
    /// small groups that arise per train/time step. For large groups use
    /// [`crate::card::at_most_one_sequential`].
    fn at_most_one_pairwise(&mut self, lits: &[Lit]) {
        for i in 0..lits.len() {
            for j in (i + 1)..lits.len() {
                self.add_clause_from(&[!lits[i], !lits[j]]);
            }
        }
    }

    /// Emits exactly-one over the literals (pairwise at-most-one).
    fn exactly_one_pairwise(&mut self, lits: &[Lit]) {
        self.at_least_one(lits);
        self.at_most_one_pairwise(lits);
    }
}

impl CnfSink for Solver {
    fn new_var(&mut self) -> Var {
        Solver::new_var(self)
    }

    fn add_clause_from(&mut self, lits: &[Lit]) {
        Solver::add_clause(self, lits.iter().copied());
    }
}

/// An inspectable CNF container.
///
/// Unlike adding clauses straight to a solver, a `Formula` records the exact
/// clause list, so encodings can be sized (the paper's "Var." column),
/// written to DIMACS, or replayed into several solvers.
///
/// # Examples
///
/// ```
/// use etcs_sat::{Formula, CnfSink, Solver, SatResult};
/// let mut f = Formula::new();
/// let a = f.new_var().positive();
/// let b = f.new_var().positive();
/// f.add_clause_from(&[a, b]);
/// f.assert_false(a);
/// let mut solver = Solver::new();
/// f.load_into(&mut solver);
/// assert!(matches!(solver.solve(), SatResult::Sat(m) if m.lit_is_true(b)));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Formula {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
}

impl Formula {
    /// Creates an empty formula.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Total number of literal occurrences.
    pub fn num_literals(&self) -> usize {
        self.clauses.iter().map(Vec::len).sum()
    }

    /// The clause list.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Loads the formula into a solver, allocating matching variables.
    ///
    /// The solver must be freshly created (its variable space becomes a
    /// superset of the formula's, index-aligned).
    ///
    /// # Panics
    ///
    /// Panics if the solver already has more variables than the formula
    /// (indices would not align).
    pub fn load_into(&self, solver: &mut Solver) {
        assert!(
            solver.num_vars() <= self.num_vars,
            "formula must be loaded into a solver with an index-aligned variable space"
        );
        while solver.num_vars() < self.num_vars {
            solver.new_var();
        }
        for c in &self.clauses {
            solver.add_clause(c.iter().copied());
        }
    }

    /// Evaluates the formula under a model.
    pub fn eval(&self, model: &Model) -> bool {
        self.clauses.iter().all(|c| model.satisfies_clause(c))
    }
}

impl CnfSink for Formula {
    fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.num_vars);
        self.num_vars += 1;
        v
    }

    fn add_clause_from(&mut self, lits: &[Lit]) {
        self.clauses.push(lits.to_vec());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SatResult;

    fn solve(f: &Formula) -> SatResult {
        let mut s = Solver::new();
        f.load_into(&mut s);
        s.solve()
    }

    #[test]
    fn and_gate_semantics() {
        let mut f = Formula::new();
        let a = f.new_var().positive();
        let b = f.new_var().positive();
        let y = f.and_gate(&[a, b]);
        f.assert_true(y);
        match solve(&f) {
            SatResult::Sat(m) => {
                assert!(m.lit_is_true(a) && m.lit_is_true(b));
            }
            other => panic!("expected sat: {other:?}"),
        }
    }

    #[test]
    fn and_gate_forced_false() {
        let mut f = Formula::new();
        let a = f.new_var().positive();
        let b = f.new_var().positive();
        let y = f.and_gate(&[a, b]);
        f.assert_false(b);
        f.assert_true(y);
        assert!(solve(&f).is_unsat());
        let _ = a;
    }

    #[test]
    fn or_gate_semantics() {
        let mut f = Formula::new();
        let a = f.new_var().positive();
        let b = f.new_var().positive();
        let y = f.or_gate(&[a, b]);
        f.assert_false(a);
        f.assert_false(b);
        f.assert_true(y);
        assert!(solve(&f).is_unsat());
    }

    #[test]
    fn empty_and_gate_is_true_empty_or_gate_is_false() {
        let mut f = Formula::new();
        let t = f.and_gate(&[]);
        let bot = f.or_gate(&[]);
        f.assert_true(t);
        f.assert_false(bot);
        assert!(solve(&f).is_sat());

        let mut g = Formula::new();
        let bot = g.or_gate(&[]);
        g.assert_true(bot);
        assert!(solve(&g).is_unsat());
    }

    #[test]
    fn exactly_one_pairwise_forces_single_true() {
        let mut f = Formula::new();
        let lits: Vec<Lit> = (0..5).map(|_| f.new_var().positive()).collect();
        f.exactly_one_pairwise(&lits);
        match solve(&f) {
            SatResult::Sat(m) => {
                assert_eq!(m.count_true(&lits), 1);
            }
            other => panic!("expected sat: {other:?}"),
        }
    }

    #[test]
    fn exactly_one_two_true_unsat() {
        let mut f = Formula::new();
        let lits: Vec<Lit> = (0..4).map(|_| f.new_var().positive()).collect();
        f.exactly_one_pairwise(&lits);
        f.assert_true(lits[0]);
        f.assert_true(lits[3]);
        assert!(solve(&f).is_unsat());
    }

    #[test]
    fn iff_propagates_both_directions() {
        let mut f = Formula::new();
        let a = f.new_var().positive();
        let b = f.new_var().positive();
        f.iff(a, b);
        f.assert_true(a);
        match solve(&f) {
            SatResult::Sat(m) => assert!(m.lit_is_true(b)),
            other => panic!("expected sat: {other:?}"),
        }
    }

    #[test]
    fn implies_any_and_all() {
        let mut f = Formula::new();
        let a = f.new_var().positive();
        let bs: Vec<Lit> = (0..3).map(|_| f.new_var().positive()).collect();
        f.implies_all(a, &bs);
        f.assert_true(a);
        match solve(&f) {
            SatResult::Sat(m) => assert_eq!(m.count_true(&bs), 3),
            other => panic!("expected sat: {other:?}"),
        }
    }

    #[test]
    fn formula_counts() {
        let mut f = Formula::new();
        let a = f.new_var().positive();
        let b = f.new_var().positive();
        f.add_clause_from(&[a, b]);
        f.add_clause_from(&[!a]);
        assert_eq!(f.num_vars(), 2);
        assert_eq!(f.num_clauses(), 2);
        assert_eq!(f.num_literals(), 3);
    }

    #[test]
    fn eval_checks_all_clauses() {
        let mut f = Formula::new();
        let a = f.new_var().positive();
        let b = f.new_var().positive();
        f.add_clause_from(&[a, b]);
        let good = Model::from_values(vec![true, false]);
        let bad = Model::from_values(vec![false, false]);
        assert!(f.eval(&good));
        assert!(!f.eval(&bad));
    }

    #[test]
    fn solver_implements_sink() {
        let mut s = Solver::new();
        let a = CnfSink::new_var(&mut s).positive();
        let b = CnfSink::new_var(&mut s).positive();
        s.implies(a, b);
        s.assert_true(a);
        match s.solve() {
            SatResult::Sat(m) => assert!(m.lit_is_true(b)),
            other => panic!("expected sat: {other:?}"),
        }
    }
}
