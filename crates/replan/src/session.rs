//! The streaming replanning session: warm-started re-solves per tick.
//!
//! A [`ReplanSession`] holds a [`LiveScenario`] and a small LRU of *warm
//! cores* — persistent incremental encodings keyed by the
//! [`etcs_core::sub_fingerprints`] `core` component of the scenario they
//! encode. Every tick re-optimises the current scenario:
//!
//! * **Warm hit** — the current core matches a cached encoding. The
//!   solver still holds every learnt clause, the floor of refuted
//!   deadlines, VSIDS activity and saved phases from earlier ticks, so
//!   the probe walk restarts where it left off and the stage-2 border
//!   MaxSAT descends on a hot solver. Deadline-only deltas land here by
//!   construction (the open encoding never sees deadlines), as does any
//!   delta sequence that returns to a previously-seen core (a closed
//!   segment reopening, a delay being reverted).
//! * **Cold fallback** — the core moved (departure, topology, train set,
//!   horizon or config changed): the encoding is rebuilt from scratch,
//!   exactly like [`etcs_core::optimize_incremental`], and cached for
//!   later ticks.
//!
//! Unlike the one-shot incremental loop, the winning deadline's probe
//! assumptions are *never* committed as unit clauses — stage 2 runs with
//! them as assumptions so the solver stays reusable for the next tick.
//! The optima are identical either way; only the witness plan may differ.
//!
//! # Deadlines and staleness
//!
//! Each tick runs under a fresh [`Interrupt`] chained to the session's
//! own token and armed with [`ReplanConfig::tick_budget`]. A tick that
//! misses its budget degrades gracefully: the interrupted solver keeps
//! all learnt state (interrupts roll back to decision level 0, nothing
//! is lost), the warm core returns to the cache, and the tick reports
//! the *last valid plan* flagged [`TickReport::stale`].

use std::collections::VecDeque;
use std::time::Duration;

use etcs_core::{
    encode, minimize_borders, sub_fingerprints, EncoderConfig, Encoding, Instance, SolvedPlan,
    Stage2, TaskError, TaskKind,
};
use etcs_lazy::{optimize_lazy_cancellable, LazyConfig};
use etcs_network::Scenario;
use etcs_obs::{Obs, Span};
use etcs_sat::{Interrupt, PreprocessConfig, SatResult};

use crate::delta::{DeltaError, LiveScenario, ScenarioDelta};

/// Configuration of a [`ReplanSession`].
#[derive(Clone, Debug)]
pub struct ReplanConfig {
    /// Encoder configuration every solve runs under (including the solve
    /// mode: a portfolio race works transparently on the warm solver).
    pub encoder: EncoderConfig,
    /// Solve each tick with the lazy CEGAR loop instead of the warm
    /// incremental solver. The CEGAR loop re-encodes per tick, so every
    /// lazy tick counts as a cold fallback; verdicts and optima are
    /// bit-identical to the eager path.
    pub lazy: bool,
    /// Wall-clock budget per tick; `None` means unbounded. A tick that
    /// exceeds it returns the last valid plan flagged stale.
    pub tick_budget: Option<Duration>,
    /// How many warm cores to keep (≥ 1). Oscillating delta sequences
    /// (close/reopen, delay/revert) re-hit evicted-free cores.
    pub warm_capacity: usize,
}

impl Default for ReplanConfig {
    fn default() -> Self {
        ReplanConfig {
            encoder: EncoderConfig::default(),
            lazy: false,
            tick_budget: None,
            warm_capacity: 4,
        }
    }
}

/// Monotonic counters of a session's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplanStats {
    /// Ticks requested.
    pub ticks: u64,
    /// Ticks answered on a cached warm core.
    pub warm_hits: u64,
    /// Ticks that (re)built an encoding from scratch (including every
    /// lazy-mode tick).
    pub cold_fallbacks: u64,
    /// Ticks that missed their budget and degraded to a stale plan.
    pub deadline_misses: u64,
    /// Deltas accepted.
    pub deltas: u64,
    /// Deltas rejected (live state unchanged).
    pub rejected_deltas: u64,
}

impl ReplanStats {
    /// Component-wise sum — for aggregating per-session counters into a
    /// service-wide total (the `served` stats record does this across
    /// every session a process has hosted).
    #[must_use]
    pub fn merged(self, other: ReplanStats) -> ReplanStats {
        ReplanStats {
            ticks: self.ticks + other.ticks,
            warm_hits: self.warm_hits + other.warm_hits,
            cold_fallbacks: self.cold_fallbacks + other.cold_fallbacks,
            deadline_misses: self.deadline_misses + other.deadline_misses,
            deltas: self.deltas + other.deltas,
            rejected_deltas: self.rejected_deltas + other.rejected_deltas,
        }
    }
}

/// What one [`ReplanSession::tick`] produced.
#[derive(Clone, Debug)]
pub struct TickReport {
    /// 1-based tick number within the session.
    pub tick: u64,
    /// Whether the tick reused a cached warm core.
    pub warm: bool,
    /// Whether the tick missed its budget: `plan`/`costs`/`feasible`
    /// then echo the last valid result (if any) instead of the current
    /// scenario's.
    pub stale: bool,
    /// Whether a plan exists (for a fresh tick: the verdict of the
    /// current scenario; for a stale tick: of the last valid one).
    pub feasible: bool,
    /// Proven optimal costs `[completion_steps, borders]` when feasible.
    pub costs: Vec<u64>,
    /// Solver conflicts spent by this tick (0 for a stale tick that did
    /// no fresh search before the budget fired — the conflicts recorded
    /// are whatever the interrupted search consumed).
    pub conflicts: u64,
    /// Solver invocations this tick made.
    pub solver_calls: usize,
    /// Trains whose arrival deadline the fresh plan misses (empty for
    /// stale ticks: the echoed plan predates the current schedule).
    pub late_trains: Vec<String>,
    /// The plan itself, when one exists.
    pub plan: Option<SolvedPlan>,
}

/// A persistent warm encoding of one scenario core.
struct WarmCore {
    core: u128,
    enc: Encoding,
    inst: Instance,
    /// Lowest deadline not yet refuted: every `d < floor` has been
    /// proven UNSAT (and its selector killed at level 0), so later
    /// probe walks start here.
    floor: usize,
}

impl WarmCore {
    fn build(scenario: &Scenario, config: &EncoderConfig, core: u128, obs: &Obs) -> Self {
        let open = scenario.without_arrivals();
        let inst = Instance::new(&open).expect("live scenario discretises (checked on apply)");
        let mut enc = encode(&inst, config, &TaskKind::OptimizeIncremental);
        enc.solver.set_obs(obs.clone());
        if config.preprocess {
            enc.preprocess(&PreprocessConfig::default());
        }
        let max_deadline = inst.t_max - 1;
        let floor = inst.completion_lower_bound().min(max_deadline);
        WarmCore {
            core,
            enc,
            inst,
            floor,
        }
    }
}

/// A streaming replanning session over one base scenario.
pub struct ReplanSession {
    live: LiveScenario,
    config: ReplanConfig,
    obs: Obs,
    interrupt: Interrupt,
    warm: VecDeque<WarmCore>,
    stats: ReplanStats,
    last_good: Option<LastGood>,
}

#[derive(Clone)]
struct LastGood {
    feasible: bool,
    costs: Vec<u64>,
    plan: Option<SolvedPlan>,
}

impl std::fmt::Debug for ReplanSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplanSession")
            .field("scenario", &self.live.current().name)
            .field("stats", &self.stats)
            .field("warm_cores", &self.warm.len())
            .finish_non_exhaustive()
    }
}

impl ReplanSession {
    /// Opens a session at `base` (observability disabled).
    ///
    /// # Errors
    ///
    /// Rejects a base scenario that does not validate or discretise.
    pub fn new(base: Scenario, config: ReplanConfig) -> Result<Self, DeltaError> {
        Self::new_obs(base, config, &Obs::disabled())
    }

    /// Opens a session at `base` with observability: a `replan.open`
    /// span, a `replan.delta` span per delta, a `replan.tick` span per
    /// tick (with `probe`/`stage2` children on the warm solver), and
    /// `replan.*` counters mirroring [`ReplanStats`].
    ///
    /// # Errors
    ///
    /// Rejects a base scenario that does not validate or discretise.
    pub fn new_obs(base: Scenario, config: ReplanConfig, obs: &Obs) -> Result<Self, DeltaError> {
        let span = obs.span_with("replan.open", &[("scenario", base.name.as_str().into())]);
        let live = LiveScenario::new(base)?;
        span.close_with(&[
            ("trains", live.current().schedule.len().into()),
            ("lazy", config.lazy.into()),
        ]);
        Ok(ReplanSession {
            live,
            config,
            obs: obs.clone(),
            interrupt: Interrupt::new(),
            warm: VecDeque::new(),
            stats: ReplanStats::default(),
            last_good: None,
        })
    }

    /// The current (patched) scenario.
    pub fn current(&self) -> &Scenario {
        self.live.current()
    }

    /// The session's cancellation token: triggering it aborts the tick
    /// in flight (which degrades to a stale report) and every later one.
    pub fn interrupt(&self) -> &Interrupt {
        &self.interrupt
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ReplanStats {
        self.stats
    }

    /// Applies one delta transactionally.
    ///
    /// # Errors
    ///
    /// Returns [`DeltaError`] — and leaves the session's scenario
    /// unchanged — when the delta does not apply cleanly.
    pub fn apply(&mut self, delta: &ScenarioDelta) -> Result<(), DeltaError> {
        let span = self
            .obs
            .span_with("replan.delta", &[("op", delta.kind().into())]);
        match self.live.apply(delta) {
            Ok(()) => {
                self.stats.deltas += 1;
                self.obs.counter_add("replan.deltas", 1);
                span.close_with(&[("accepted", true.into())]);
                Ok(())
            }
            Err(e) => {
                self.stats.rejected_deltas += 1;
                self.obs.counter_add("replan.rejected_deltas", 1);
                span.close_with(&[
                    ("accepted", false.into()),
                    ("error", e.message.as_str().into()),
                ]);
                Err(e)
            }
        }
    }

    /// Re-optimises the current scenario and returns the updated plan.
    ///
    /// Verdict and costs are bit-identical to a cold
    /// [`etcs_core::optimize_incremental`] of the current scenario —
    /// warm or cold, eager or lazy — unless the tick misses its budget,
    /// in which case the report echoes the last valid result flagged
    /// [`TickReport::stale`].
    pub fn tick(&mut self) -> TickReport {
        self.stats.ticks += 1;
        let tick_no = self.stats.ticks;
        self.obs.counter_add("replan.ticks", 1);
        let span = self
            .obs
            .span_with("replan.tick", &[("tick", tick_no.into())]);
        let token = Interrupt::chained(&self.interrupt);
        if let Some(budget) = self.config.tick_budget {
            token.arm_deadline(budget);
        }

        let solved = if self.config.lazy {
            self.tick_lazy(&token)
        } else {
            self.tick_warm(&token, &span)
        };

        match solved {
            Solve::Fresh {
                warm,
                feasible,
                costs,
                plan,
                conflicts,
                solver_calls,
            } => {
                if warm {
                    self.stats.warm_hits += 1;
                    self.obs.counter_add("replan.warm_hits", 1);
                } else {
                    self.stats.cold_fallbacks += 1;
                    self.obs.counter_add("replan.cold_fallbacks", 1);
                }
                let late_trains = match &plan {
                    Some(p) => late_trains(self.live.current(), p),
                    None => Vec::new(),
                };
                self.last_good = Some(LastGood {
                    feasible,
                    costs: costs.clone(),
                    plan: plan.clone(),
                });
                span.close_with(&[
                    ("warm", warm.into()),
                    ("stale", false.into()),
                    ("feasible", feasible.into()),
                    ("conflicts", conflicts.into()),
                ]);
                TickReport {
                    tick: tick_no,
                    warm,
                    stale: false,
                    feasible,
                    costs,
                    conflicts,
                    solver_calls,
                    late_trains,
                    plan,
                }
            }
            Solve::Missed {
                warm,
                conflicts,
                solver_calls,
            } => {
                if warm {
                    self.stats.warm_hits += 1;
                    self.obs.counter_add("replan.warm_hits", 1);
                } else {
                    self.stats.cold_fallbacks += 1;
                    self.obs.counter_add("replan.cold_fallbacks", 1);
                }
                self.stats.deadline_misses += 1;
                self.obs.counter_add("replan.deadline_misses", 1);
                let last = self.last_good.clone();
                span.close_with(&[
                    ("warm", warm.into()),
                    ("stale", true.into()),
                    ("conflicts", conflicts.into()),
                ]);
                TickReport {
                    tick: tick_no,
                    warm,
                    stale: true,
                    feasible: last.as_ref().is_some_and(|l| l.feasible),
                    costs: last.as_ref().map(|l| l.costs.clone()).unwrap_or_default(),
                    conflicts,
                    solver_calls,
                    late_trains: Vec::new(),
                    plan: last.and_then(|l| l.plan),
                }
            }
        }
    }

    /// The eager path: probe walk + assumption-scoped stage 2 on a warm
    /// (or freshly built) persistent encoding.
    fn tick_warm(&mut self, token: &Interrupt, span: &Span) -> Solve {
        let fps = sub_fingerprints(self.live.current(), &self.config.encoder);
        let (mut w, warm) = match self.warm.iter().position(|w| w.core == fps.core) {
            Some(i) => (self.warm.remove(i).expect("position is in range"), true),
            None => (
                WarmCore::build(
                    self.live.current(),
                    &self.config.encoder,
                    fps.core,
                    &self.obs,
                ),
                false,
            ),
        };
        w.enc.solver.set_interrupt(token.clone());
        let conflicts_before = w.enc.solver.stats().conflicts;
        let max_deadline = w.inst.t_max - 1;
        let mut calls = 0usize;
        let mut best = None;
        let mut missed = false;
        for d in w.floor..=max_deadline {
            calls += 1;
            let assumptions = w.enc.deadline_probe_assumptions(&w.inst, d);
            let probe = span.child_with("probe", &[("deadline", d.into())]);
            let before = w.enc.solver.stats().conflicts;
            let verdict = w.enc.solver.solve_with(&assumptions);
            let delta = w.enc.solver.stats().conflicts - before;
            self.obs.counter_add("probes", 1);
            self.obs.counter_add("conflicts", delta);
            probe.close_with(&[
                ("deadline", d.into()),
                ("sat", matches!(verdict, SatResult::Sat(_)).into()),
                ("conflicts", delta.into()),
            ]);
            match verdict {
                SatResult::Sat(_) => {
                    best = Some(d);
                    break;
                }
                SatResult::Unsat { .. } => {
                    // Refuted once, refuted forever on this core: kill
                    // the selector at level 0 and advance the floor so no
                    // later tick re-probes a dead deadline.
                    if let Some(&sel) = w.enc.step_selectors.get(d).and_then(|s| s.as_ref()) {
                        w.enc.solver.add_clause([!sel]);
                    }
                    w.floor = d + 1;
                }
                SatResult::Unknown => {
                    missed = true;
                    break;
                }
            }
        }

        let solve = if missed {
            Solve::Missed {
                warm,
                conflicts: w.enc.solver.stats().conflicts - conflicts_before,
                solver_calls: calls,
            }
        } else if let Some(d) = best {
            // Stage 2 with the winning deadline as *assumptions* — never
            // unit clauses — so the solver stays probe-able next tick.
            let assumptions = w.enc.deadline_probe_assumptions(&w.inst, d);
            let (result, stage2_calls) =
                minimize_borders(&mut w.enc, &w.inst, &assumptions, &self.obs);
            calls += stage2_calls;
            let conflicts = w.enc.solver.stats().conflicts - conflicts_before;
            match result {
                Stage2::Solved(plan, borders) => Solve::Fresh {
                    warm,
                    feasible: true,
                    costs: vec![d as u64 + 1, borders],
                    plan: Some(plan),
                    conflicts,
                    solver_calls: calls,
                },
                Stage2::Unsat => unreachable!("the probed deadline was satisfiable"),
                Stage2::Interrupted => Solve::Missed {
                    warm,
                    conflicts,
                    solver_calls: calls,
                },
            }
        } else {
            // Every deadline refuted: the floor sits beyond the horizon
            // and later ticks on this core answer infeasible instantly.
            Solve::Fresh {
                warm,
                feasible: false,
                costs: Vec::new(),
                plan: None,
                conflicts: w.enc.solver.stats().conflicts - conflicts_before,
                solver_calls: calls,
            }
        };

        self.warm.push_front(w);
        self.warm.truncate(self.config.warm_capacity.max(1));
        solve
    }

    /// The lazy path: a cold CEGAR re-solve per tick.
    fn tick_lazy(&mut self, token: &Interrupt) -> Solve {
        match optimize_lazy_cancellable(
            self.live.current(),
            &self.config.encoder,
            &LazyConfig::default(),
            token,
            &self.obs,
        ) {
            Ok((outcome, report)) => {
                let (feasible, costs, plan) = match outcome {
                    etcs_core::DesignOutcome::Solved { plan, costs } => (true, costs, Some(plan)),
                    etcs_core::DesignOutcome::Infeasible => (false, Vec::new(), None),
                };
                Solve::Fresh {
                    warm: false,
                    feasible,
                    costs,
                    plan,
                    conflicts: report.report.search.conflicts,
                    solver_calls: report.report.solver_calls,
                }
            }
            Err(TaskError::Cancelled | TaskError::DeadlineExceeded) => Solve::Missed {
                warm: false,
                conflicts: 0,
                solver_calls: 0,
            },
            Err(TaskError::Network(e)) => {
                unreachable!("live scenario validated on apply: {e}")
            }
        }
    }
}

enum Solve {
    Fresh {
        warm: bool,
        feasible: bool,
        costs: Vec<u64>,
        plan: Option<SolvedPlan>,
        conflicts: u64,
        solver_calls: usize,
    },
    Missed {
        warm: bool,
        conflicts: u64,
        solver_calls: usize,
    },
}

/// Trains whose arrival deadline `plan` misses, in schedule order. The
/// plan optimises the *open* scenario; this is the report that tells the
/// operator which deadline commitments the optimum breaks.
fn late_trains(scenario: &Scenario, plan: &SolvedPlan) -> Vec<String> {
    let open = scenario.without_arrivals();
    let Ok(inst) = Instance::new(&open) else {
        return Vec::new();
    };
    let arrivals = plan.arrival_steps(&inst);
    scenario
        .schedule
        .runs()
        .iter()
        .zip(&arrivals)
        .filter_map(|(run, arrival)| {
            let deadline = run.arrival?;
            let deadline_step = scenario.step_of(deadline);
            match arrival {
                Some(a) if *a <= deadline_step => None,
                _ => Some(run.train.name.clone()),
            }
        })
        .collect()
}
