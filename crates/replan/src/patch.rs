//! The `.delta` trace format: scenario patches as plain text.
//!
//! A delta trace is the `.rail` idea applied to *change*: a line-based
//! document listing scenario deltas and `tick` markers, shareable and
//! replayable against a base scenario. The grammar reuses the scenario
//! format's conventions — `#` comments, names that may contain spaces
//! separated by `:` / `->` / keywords, `h:mm:ss` times — and the parser
//! reports errors with the same line + column pointers as the scenario
//! loader.
//!
//! # Format
//!
//! ```text
//! # comments start with '#'
//! delay Train 1 : 0:01:00            # departs 60s later (deadlines shift too)
//! deadline Train 1 : arr 0:06:00     # set the arrival deadline
//! deadline Train 1 : free            # clear it
//! close A-P                          # track leaves the network
//! reopen A-P                         # and comes back
//! remove Train 1                     # train (and run) leaves the schedule
//! add T9 : 100 80 A -> C dep 0:00:30 arr 0:05:00
//! tick                               # re-plan now
//! ```

use std::fmt;
use std::fmt::Write as _;

use etcs_network::{KmPerHour, Meters, Seconds};

use crate::delta::{DeltaRun, ScenarioDelta};

/// Error produced when parsing a `.delta` trace fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// 1-based column of the offending fragment within the raw line
    /// (0 when the error has no narrower span than the line).
    pub column: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.line, self.column) {
            (0, _) => write!(f, "delta parse error: {}", self.message),
            (line, 0) => write!(f, "delta parse error at line {line}: {}", self.message),
            (line, column) => write!(
                f,
                "delta parse error at line {line}, column {column}: {}",
                self.message
            ),
        }
    }
}

impl std::error::Error for ParseTraceError {}

/// One line of a delta trace: a scenario delta, or a replan tick.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceOp {
    /// Apply this delta to the live scenario.
    Delta(ScenarioDelta),
    /// Re-plan now.
    Tick,
}

/// 1-based column of `fragment` within `raw`, or 0 when `fragment` is not
/// a subslice of `raw` (same pointer arithmetic as the scenario loader).
fn column_of(raw: &str, fragment: &str) -> usize {
    let base = raw.as_ptr() as usize;
    let p = fragment.as_ptr() as usize;
    if p >= base && p + fragment.len() <= base + raw.len() {
        p - base + 1
    } else {
        0
    }
}

/// Parses a `.delta` trace document.
///
/// # Errors
///
/// Returns [`ParseTraceError`] with a line + column pointer at the
/// offending fragment on malformed syntax. Reference errors (unknown
/// trains or tracks) are *not* parse errors — they surface when the
/// delta is applied to a live scenario.
pub fn parse_trace(input: &str) -> Result<Vec<TraceOp>, ParseTraceError> {
    let mut ops = Vec::new();
    for (lineno, raw) in input.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |message: String| ParseTraceError {
            line: lineno,
            column: column_of(raw, line),
            message,
        };
        let err_at = |fragment: &str, message: String| ParseTraceError {
            line: lineno,
            column: column_of(raw, fragment),
            message,
        };
        let (keyword, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let rest = rest.trim();
        match keyword {
            "tick" => {
                if !rest.is_empty() {
                    return Err(err_at(
                        rest,
                        format!("tick takes no arguments, got `{rest}`"),
                    ));
                }
                ops.push(TraceOp::Tick);
            }
            "delay" => {
                // <train> : <duration>
                let (train, by) = rest
                    .split_once(':')
                    .ok_or_else(|| err("delay needs `train : duration`".into()))?;
                let train = train.trim();
                if train.is_empty() {
                    return Err(err("delay needs a train name".into()));
                }
                let by_text = by.trim();
                let by = Seconds::parse_hms(by_text)
                    .map_err(|e| err_at(by_text, format!("invalid delay duration: {e}")))?;
                ops.push(TraceOp::Delta(ScenarioDelta::Delay {
                    train: train.to_owned(),
                    by,
                }));
            }
            "deadline" => {
                // <train> : arr <time>  |  <train> : free
                let (train, spec) = rest.split_once(':').ok_or_else(|| {
                    err("deadline needs `train : arr <time>` or `train : free`".into())
                })?;
                let train = train.trim();
                if train.is_empty() {
                    return Err(err("deadline needs a train name".into()));
                }
                let spec = spec.trim();
                let arrival = if spec == "free" {
                    None
                } else if let Some(time) = spec.strip_prefix("arr ") {
                    let time = time.trim();
                    Some(
                        Seconds::parse_hms(time)
                            .map_err(|e| err_at(time, format!("invalid deadline: {e}")))?,
                    )
                } else {
                    return Err(err_at(
                        spec,
                        format!("deadline needs `arr <time>` or `free`, got `{spec}`"),
                    ));
                };
                ops.push(TraceOp::Delta(ScenarioDelta::Deadline {
                    train: train.to_owned(),
                    arrival,
                }));
            }
            "close" | "reopen" => {
                if rest.is_empty() {
                    return Err(err(format!("{keyword} needs a track name")));
                }
                let track = rest.to_owned();
                ops.push(TraceOp::Delta(if keyword == "close" {
                    ScenarioDelta::Close { track }
                } else {
                    ScenarioDelta::Reopen { track }
                }));
            }
            "remove" => {
                if rest.is_empty() {
                    return Err(err("remove needs a train name".into()));
                }
                ops.push(TraceOp::Delta(ScenarioDelta::Remove {
                    train: rest.to_owned(),
                }));
            }
            "add" => {
                // <train> : <length> <speed> <origin> -> <dest> dep <time> [arr <time>]
                let (train, spec) = rest.split_once(':').ok_or_else(|| {
                    err("add needs `train : length speed origin -> dest dep <time>`".into())
                })?;
                let train = train.trim();
                if train.is_empty() {
                    return Err(err("add needs a train name".into()));
                }
                let (head, times) = spec
                    .split_once(" dep ")
                    .ok_or_else(|| err("add needs ` dep <time>`".into()))?;
                let (lead, destination) = head
                    .split_once("->")
                    .ok_or_else(|| err("add route needs `origin -> dest`".into()))?;
                let mut lead_parts = lead.trim().splitn(3, char::is_whitespace);
                let (length_text, speed_text, origin) =
                    match (lead_parts.next(), lead_parts.next(), lead_parts.next()) {
                        (Some(l), Some(s), Some(o)) => (l, s, o.trim()),
                        _ => return Err(err("add needs `length speed origin` before `->`".into())),
                    };
                let length: u64 = length_text.parse().map_err(|_| {
                    err_at(length_text, format!("invalid train length `{length_text}`"))
                })?;
                let speed: u32 = speed_text.parse().map_err(|_| {
                    err_at(speed_text, format!("invalid train speed `{speed_text}`"))
                })?;
                let (dep_text, arr_text) = match times.trim().split_once(" arr ") {
                    Some((d, a)) => (d.trim(), Some(a.trim())),
                    None => (times.trim(), None),
                };
                let departure = Seconds::parse_hms(dep_text)
                    .map_err(|e| err_at(dep_text, format!("invalid departure: {e}")))?;
                let arrival = match arr_text {
                    Some(a) => Some(
                        Seconds::parse_hms(a)
                            .map_err(|e| err_at(a, format!("invalid arrival: {e}")))?,
                    ),
                    None => None,
                };
                ops.push(TraceOp::Delta(ScenarioDelta::Add(DeltaRun {
                    train: train.to_owned(),
                    length: Meters(length),
                    max_speed: KmPerHour(speed),
                    origin: origin.to_owned(),
                    destination: destination.trim().to_owned(),
                    departure,
                    arrival,
                })));
            }
            other => return Err(err_at(other, format!("unknown keyword `{other}`"))),
        }
    }
    Ok(ops)
}

/// Serialises a trace to the `.delta` text format ([`parse_trace`]'s
/// inverse: every written trace parses back to the same ops).
pub fn write_trace(ops: &[TraceOp]) -> String {
    let mut out = String::new();
    for op in ops {
        match op {
            TraceOp::Tick => {
                let _ = writeln!(out, "tick");
            }
            TraceOp::Delta(ScenarioDelta::Delay { train, by }) => {
                let _ = writeln!(out, "delay {train} : {by}");
            }
            TraceOp::Delta(ScenarioDelta::Deadline { train, arrival }) => match arrival {
                Some(t) => {
                    let _ = writeln!(out, "deadline {train} : arr {t}");
                }
                None => {
                    let _ = writeln!(out, "deadline {train} : free");
                }
            },
            TraceOp::Delta(ScenarioDelta::Close { track }) => {
                let _ = writeln!(out, "close {track}");
            }
            TraceOp::Delta(ScenarioDelta::Reopen { track }) => {
                let _ = writeln!(out, "reopen {track}");
            }
            TraceOp::Delta(ScenarioDelta::Remove { train }) => {
                let _ = writeln!(out, "remove {train}");
            }
            TraceOp::Delta(ScenarioDelta::Add(run)) => {
                let _ = write!(
                    out,
                    "add {} : {} {} {} -> {} dep {}",
                    run.train,
                    run.length.as_u64(),
                    run.max_speed.as_u32(),
                    run.origin,
                    run.destination,
                    run.departure
                );
                if let Some(arr) = run.arrival {
                    let _ = write!(out, " arr {arr}");
                }
                let _ = writeln!(out);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_vocabulary_roundtrips() {
        let text = "\
# exercise every op
delay Train 1 : 0:01:00
deadline Train 1 : arr 0:06:00
deadline Train 1 : free
close A-P
reopen A-P
remove Train 1
add T9 : 100 80 A -> C dep 0:00:30 arr 0:05:00
add T10 : 150 120 A -> C dep 0:02:00
tick
";
        let ops = parse_trace(text).expect("parses");
        assert_eq!(ops.len(), 9);
        let written = write_trace(&ops);
        let reparsed = parse_trace(&written).expect("round-trips");
        assert_eq!(ops, reparsed);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let ops = parse_trace("# nothing\n\n   # still nothing\ntick # trailing\n").expect("ok");
        assert_eq!(ops, vec![TraceOp::Tick]);
    }

    #[test]
    fn unknown_keyword_reports_line_and_column() {
        let e = parse_trace("tick\n  bogus thing\n").expect_err("fails");
        assert_eq!((e.line, e.column), (2, 3), "{e}");
        assert!(e.message.contains("bogus"));
        assert!(format!("{e}").contains("line 2, column 3"));
    }

    #[test]
    fn bad_duration_points_at_the_fragment() {
        let e = parse_trace("delay T : soon\n").expect_err("fails");
        assert_eq!(e.line, 1);
        assert_eq!(e.column, 11, "{e}");
        assert!(e.message.contains("invalid delay duration"));
    }

    #[test]
    fn bad_deadline_spec_points_at_the_fragment() {
        let e = parse_trace("deadline T : whenever\n").expect_err("fails");
        assert_eq!((e.line, e.column), (1, 14), "{e}");
        let e = parse_trace("deadline T : arr nope\n").expect_err("fails");
        assert_eq!((e.line, e.column), (1, 18), "{e}");
    }

    #[test]
    fn bad_add_numbers_point_at_the_fragment() {
        let e = parse_trace("add T : heavy 80 A -> C dep 0:00:30\n").expect_err("fails");
        assert_eq!((e.line, e.column), (1, 9), "{e}");
        assert!(e.message.contains("invalid train length"));
        let e = parse_trace("add T : 100 fast A -> C dep 0:00:30\n").expect_err("fails");
        assert_eq!((e.line, e.column), (1, 13), "{e}");
        assert!(e.message.contains("invalid train speed"));
    }

    #[test]
    fn tick_with_arguments_is_rejected() {
        let e = parse_trace("tick now\n").expect_err("fails");
        assert!(e.message.contains("no arguments"));
        assert_eq!((e.line, e.column), (1, 6), "{e}");
    }

    #[test]
    fn missing_pieces_blame_the_directive() {
        for bad in [
            "delay T1",
            "deadline T1",
            "close",
            "reopen",
            "remove",
            "add T : 100 80 A - C dep 0:00:30",
            "add T : 100 80 A -> C",
        ] {
            let e = parse_trace(bad).expect_err(bad);
            assert_eq!(e.line, 1, "{bad}");
            assert!(e.column >= 1, "{bad}: {e}");
        }
    }

    #[test]
    fn names_with_spaces_survive() {
        let ops = parse_trace("delay Night Express 7 : 0:00:30\n").expect("parses");
        match &ops[0] {
            TraceOp::Delta(ScenarioDelta::Delay { train, by }) => {
                assert_eq!(train, "Night Express 7");
                assert_eq!(*by, Seconds(30));
            }
            other => panic!("unexpected op {other:?}"),
        }
    }
}
