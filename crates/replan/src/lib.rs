//! # etcs-replan — online replanning with warm-started re-solves
//!
//! A real ETCS Level 3 controller never solves one static instance: it
//! re-verifies and re-optimises continuously as trains slip schedules,
//! segments close and deadlines move. This crate is that dispatch loop
//! as a library:
//!
//! * [`ScenarioDelta`] / [`LiveScenario`] — transactional scenario
//!   patches (train delayed/added/removed, segment closed/reopened,
//!   deadline tightened/freed) over a validated base,
//! * [`parse_trace`] / [`write_trace`] — the `.delta` plain-text trace
//!   format with the scenario loader's line+column error reporting,
//! * [`ReplanSession`] — the streaming session: per [`tick`] it
//!   re-optimises the current scenario on persistent warm solver state
//!   keyed by [`etcs_core::sub_fingerprints`], falls back to a cold
//!   encode when a delta invalidates the core, and honours a per-tick
//!   wall-clock budget by degrading to the last valid plan (flagged
//!   stale) via [`etcs_sat::Interrupt`] cancellation.
//!
//! Verdicts and optima per tick are bit-identical to a cold
//! [`etcs_core::optimize_incremental`] of the same patched scenario —
//! the differential suite in `tests/replan_differential.rs` proves it
//! across eager, lazy and portfolio modes.
//!
//! ## Quick start
//!
//! ```
//! use etcs_replan::{parse_trace, ReplanConfig, ReplanSession, TraceOp};
//! use etcs_network::fixtures;
//!
//! let mut session = ReplanSession::new(
//!     fixtures::running_example(),
//!     ReplanConfig::default(),
//! )?;
//! let trace = parse_trace("tick\ndeadline Train 1 : arr 0:04:00\ntick\n").expect("parses");
//! let mut reports = Vec::new();
//! for op in &trace {
//!     match op {
//!         TraceOp::Delta(d) => {
//!             session.apply(d)?;
//!         }
//!         TraceOp::Tick => reports.push(session.tick()),
//!     }
//! }
//! // A deadline delta leaves the scenario core untouched: the second
//! // tick reuses the first tick's warm solver and agrees on the optima.
//! assert!(reports.iter().all(|r| r.feasible && !r.stale));
//! assert!(!reports[0].warm && reports[1].warm);
//! assert_eq!(reports[0].costs, reports[1].costs);
//! # Ok::<(), etcs_replan::DeltaError>(())
//! ```
//!
//! [`tick`]: ReplanSession::tick

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod delta;
mod patch;
mod session;

pub use delta::{DeltaError, DeltaRun, LiveScenario, ScenarioDelta};
pub use patch::{parse_trace, write_trace, ParseTraceError, TraceOp};
pub use session::{ReplanConfig, ReplanSession, ReplanStats, TickReport};
