//! Scenario deltas and the live-scenario state they apply to.
//!
//! A [`ScenarioDelta`] is one operational event — a train slipping its
//! schedule, a segment closing, a deadline moving — and a
//! [`LiveScenario`] is a base scenario plus the cumulative effect of the
//! deltas accepted so far. Application is transactional: a delta either
//! produces a *valid* patched scenario (the network rebuilds, the
//! schedule still resolves, the instance still discretises) and commits,
//! or it is rejected with a [`DeltaError`] and the live state is
//! untouched.
//!
//! Node and station identities are stable across topology deltas: the
//! rebuilt network keeps every node and every station (in declaration
//! order), so `StationId`s held by schedule runs stay valid when tracks
//! close. A closure that would empty a TTD or a station is rejected —
//! that is an infrastructure change, not an operational delta.

use std::collections::BTreeSet;
use std::fmt;

use etcs_core::Instance;
use etcs_network::{
    KmPerHour, Meters, NetworkBuilder, Scenario, Schedule, Seconds, TrackId, Train, TrainRun,
};

/// One operational event in a replanning stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScenarioDelta {
    /// Train `train` departs `by` seconds later; its arrival deadline and
    /// stop deadlines (where set) shift with it.
    Delay {
        /// Name of the delayed train.
        train: String,
        /// How much later everything on its run happens.
        by: Seconds,
    },
    /// Set (or clear, with `None`) train `train`'s arrival deadline.
    Deadline {
        /// Name of the train whose deadline moves.
        train: String,
        /// The new absolute arrival deadline, or `None` to free it.
        arrival: Option<Seconds>,
    },
    /// Close the track named `track`: it leaves the network entirely.
    Close {
        /// Name of the track to close.
        track: String,
    },
    /// Reopen a previously closed track.
    Reopen {
        /// Name of the track to reopen.
        track: String,
    },
    /// Remove train `train` (and its run) from the schedule.
    Remove {
        /// Name of the train to remove.
        train: String,
    },
    /// Add a new train with the given run.
    Add(DeltaRun),
}

impl ScenarioDelta {
    /// Stable lowercase name of the delta kind (obs/artifact vocabulary).
    pub fn kind(&self) -> &'static str {
        match self {
            ScenarioDelta::Delay { .. } => "delay",
            ScenarioDelta::Deadline { .. } => "deadline",
            ScenarioDelta::Close { .. } => "close",
            ScenarioDelta::Reopen { .. } => "reopen",
            ScenarioDelta::Remove { .. } => "remove",
            ScenarioDelta::Add(_) => "add",
        }
    }
}

/// The schedule entry an [`ScenarioDelta::Add`] introduces. Stations are
/// named, not id'd: they are resolved against the live network when the
/// delta is applied, so a trace file stays meaningful on its own.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaRun {
    /// New train's name (must not already be scheduled).
    pub train: String,
    /// Train length.
    pub length: Meters,
    /// Train maximum speed.
    pub max_speed: KmPerHour,
    /// Origin station name (must be a boundary station).
    pub origin: String,
    /// Destination station name.
    pub destination: String,
    /// Departure time.
    pub departure: Seconds,
    /// Optional arrival deadline.
    pub arrival: Option<Seconds>,
}

/// Why a delta was rejected. The live scenario is unchanged.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaError {
    /// Human-readable description of the rejection.
    pub message: String,
}

impl DeltaError {
    fn new(message: impl Into<String>) -> Self {
        DeltaError {
            message: message.into(),
        }
    }
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "delta rejected: {}", self.message)
    }
}

impl std::error::Error for DeltaError {}

/// A base scenario plus the cumulative effect of every accepted delta.
#[derive(Clone, Debug)]
pub struct LiveScenario {
    base: Scenario,
    closed: BTreeSet<String>,
    runs: Vec<TrainRun>,
    current: Scenario,
}

impl LiveScenario {
    /// Starts a live scenario at `base`.
    ///
    /// # Errors
    ///
    /// Rejects a base that does not validate or discretise — a session
    /// must start from a solvable state.
    pub fn new(base: Scenario) -> Result<Self, DeltaError> {
        check(&base)?;
        let runs = base.schedule.runs().to_vec();
        Ok(LiveScenario {
            current: base.clone(),
            base,
            closed: BTreeSet::new(),
            runs,
        })
    }

    /// The current (patched) scenario.
    pub fn current(&self) -> &Scenario {
        &self.current
    }

    /// Names of currently closed tracks, in name order.
    pub fn closed(&self) -> impl Iterator<Item = &str> {
        self.closed.iter().map(String::as_str)
    }

    /// Applies one delta transactionally.
    ///
    /// # Errors
    ///
    /// Returns [`DeltaError`] — and leaves the live state unchanged — if
    /// the delta references unknown entities, would empty a TTD or
    /// station, or would leave a scenario that no longer validates or
    /// discretises.
    pub fn apply(&mut self, delta: &ScenarioDelta) -> Result<(), DeltaError> {
        let mut closed = self.closed.clone();
        let mut runs = self.runs.clone();
        match delta {
            ScenarioDelta::Delay { train, by } => {
                let run = find_run_mut(&mut runs, train)?;
                run.departure = Seconds(run.departure.as_u64() + by.as_u64());
                if let Some(arr) = &mut run.arrival {
                    *arr = Seconds(arr.as_u64() + by.as_u64());
                }
                for (_, deadline) in &mut run.stops {
                    if let Some(d) = deadline {
                        *d = Seconds(d.as_u64() + by.as_u64());
                    }
                }
            }
            ScenarioDelta::Deadline { train, arrival } => {
                let run = find_run_mut(&mut runs, train)?;
                if let Some(arr) = arrival {
                    if arr.as_u64() < run.departure.as_u64() {
                        return Err(DeltaError::new(format!(
                            "deadline {arr} for `{train}` precedes its departure {}",
                            run.departure
                        )));
                    }
                }
                run.arrival = *arrival;
            }
            ScenarioDelta::Close { track } => {
                let exists = self.base.network.tracks().iter().any(|t| t.name == *track);
                if !exists {
                    return Err(DeltaError::new(format!("unknown track `{track}`")));
                }
                if !closed.insert(track.clone()) {
                    return Err(DeltaError::new(format!("track `{track}` already closed")));
                }
            }
            ScenarioDelta::Reopen { track } => {
                if !closed.remove(track) {
                    return Err(DeltaError::new(format!("track `{track}` is not closed")));
                }
            }
            ScenarioDelta::Remove { train } => {
                let before = runs.len();
                runs.retain(|r| r.train.name != *train);
                if runs.len() == before {
                    return Err(DeltaError::new(format!("unknown train `{train}`")));
                }
            }
            ScenarioDelta::Add(spec) => {
                if runs.iter().any(|r| r.train.name == spec.train) {
                    return Err(DeltaError::new(format!(
                        "train `{}` is already scheduled",
                        spec.train
                    )));
                }
                // Stations are resolved against the *base* network: the
                // rebuild keeps every station, so the ids transfer.
                let origin = self
                    .base
                    .network
                    .station_by_name(&spec.origin)
                    .ok_or_else(|| DeltaError::new(format!("unknown station `{}`", spec.origin)))?;
                let destination = self
                    .base
                    .network
                    .station_by_name(&spec.destination)
                    .ok_or_else(|| {
                        DeltaError::new(format!("unknown station `{}`", spec.destination))
                    })?;
                runs.push(TrainRun::new(
                    Train::new(&spec.train, spec.length, spec.max_speed),
                    origin,
                    destination,
                    spec.departure,
                    spec.arrival,
                ));
            }
        }
        let current = materialize(&self.base, &closed, &runs)?;
        check(&current)?;
        self.closed = closed;
        self.runs = runs;
        self.current = current;
        Ok(())
    }
}

fn find_run_mut<'a>(runs: &'a mut [TrainRun], train: &str) -> Result<&'a mut TrainRun, DeltaError> {
    runs.iter_mut()
        .find(|r| r.train.name == train)
        .ok_or_else(|| DeltaError::new(format!("unknown train `{train}`")))
}

/// Rebuilds the base network without the closed tracks and re-attaches
/// the schedule. Every node and every station survives (in declaration
/// order), so node and station ids are stable; track ids compact.
fn materialize(
    base: &Scenario,
    closed: &BTreeSet<String>,
    runs: &[TrainRun],
) -> Result<Scenario, DeltaError> {
    let network = if closed.is_empty() {
        base.network.clone()
    } else {
        let net = &base.network;
        let mut b = NetworkBuilder::new();
        b.nodes(net.num_nodes());
        let mut kept: Vec<Option<TrackId>> = Vec::with_capacity(net.tracks().len());
        for t in net.tracks() {
            if closed.contains(&t.name) {
                kept.push(None);
            } else {
                kept.push(Some(b.track(t.from, t.to, t.length, &t.name)));
            }
        }
        let survivors = |members: &[TrackId]| -> Vec<TrackId> {
            members.iter().filter_map(|t| kept[t.index()]).collect()
        };
        for ttd in net.ttds() {
            let members = survivors(&ttd.tracks);
            if members.is_empty() {
                return Err(DeltaError::new(format!(
                    "closing every track of ttd `{}` is an infrastructure change, not a delta",
                    ttd.name
                )));
            }
            b.ttd(&ttd.name, members);
        }
        for station in net.stations() {
            let members = survivors(&station.tracks);
            if members.is_empty() {
                return Err(DeltaError::new(format!(
                    "closure would leave station `{}` without tracks",
                    station.name
                )));
            }
            b.station(&station.name, members, station.boundary);
        }
        b.build()
            .map_err(|e| DeltaError::new(format!("patched network invalid: {e}")))?
    };
    Ok(Scenario {
        name: base.name.clone(),
        network,
        schedule: Schedule::new(runs.to_vec()),
        r_s: base.r_s,
        r_t: base.r_t,
        horizon: base.horizon,
    })
}

/// A patched scenario must still validate *and* discretise: a delta that
/// strands a train (no path from origin to destination) is rejected at
/// apply time instead of poisoning every later tick.
fn check(scenario: &Scenario) -> Result<(), DeltaError> {
    scenario
        .validate()
        .map_err(|e| DeltaError::new(format!("patched scenario invalid: {e}")))?;
    Instance::new(&scenario.without_arrivals())
        .map_err(|e| DeltaError::new(format!("patched scenario does not discretise: {e}")))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use etcs_network::fixtures;

    fn live() -> LiveScenario {
        LiveScenario::new(fixtures::running_example()).expect("valid base")
    }

    #[test]
    fn delay_shifts_departure_and_deadlines() {
        let mut l = live();
        let name = l.current().schedule.runs()[0].train.name.clone();
        let before = l.current().schedule.runs()[0].clone();
        l.apply(&ScenarioDelta::Delay {
            train: name,
            by: Seconds(60),
        })
        .expect("accepted");
        let after = &l.current().schedule.runs()[0];
        assert_eq!(after.departure.as_u64(), before.departure.as_u64() + 60);
        match (before.arrival, after.arrival) {
            (Some(b), Some(a)) => assert_eq!(a.as_u64(), b.as_u64() + 60),
            (None, None) => {}
            other => panic!("arrival deadline changed shape: {other:?}"),
        }
    }

    #[test]
    fn deadline_sets_and_clears() {
        let mut l = live();
        let name = l.current().schedule.runs()[0].train.name.clone();
        l.apply(&ScenarioDelta::Deadline {
            train: name.clone(),
            arrival: Some(Seconds(290)),
        })
        .expect("accepted");
        assert_eq!(l.current().schedule.runs()[0].arrival, Some(Seconds(290)));
        l.apply(&ScenarioDelta::Deadline {
            train: name,
            arrival: None,
        })
        .expect("accepted");
        assert_eq!(l.current().schedule.runs()[0].arrival, None);
    }

    #[test]
    fn deadline_before_departure_is_rejected() {
        let mut l = live();
        let run = &l.current().schedule.runs()[0];
        let name = run.train.name.clone();
        let dep = run.departure;
        if dep.as_u64() == 0 {
            // Can't precede a zero departure; delay the train first.
            l.apply(&ScenarioDelta::Delay {
                train: name.clone(),
                by: Seconds(30),
            })
            .expect("accepted");
        }
        let err = l
            .apply(&ScenarioDelta::Deadline {
                train: name,
                arrival: Some(Seconds(0)),
            })
            .expect_err("rejected");
        assert!(err.message.contains("precedes"), "{err}");
    }

    #[test]
    fn unknown_entities_are_rejected_without_state_change() {
        let mut l = live();
        let before = l.current().clone();
        for delta in [
            ScenarioDelta::Delay {
                train: "ghost".into(),
                by: Seconds(1),
            },
            ScenarioDelta::Close {
                track: "ghost".into(),
            },
            ScenarioDelta::Reopen {
                track: "ghost".into(),
            },
            ScenarioDelta::Remove {
                train: "ghost".into(),
            },
        ] {
            l.apply(&delta).expect_err("rejected");
        }
        assert_eq!(l.current().network, before.network);
        assert_eq!(l.current().schedule, before.schedule);
    }

    #[test]
    fn close_then_reopen_restores_the_network() {
        let mut l = live();
        let before = l.current().network.clone();
        // Find a track whose closure is accepted (does not empty a TTD
        // or station, does not strand a train).
        let names: Vec<String> = before.tracks().iter().map(|t| t.name.clone()).collect();
        let mut closed = None;
        for name in names {
            if l.apply(&ScenarioDelta::Close {
                track: name.clone(),
            })
            .is_ok()
            {
                closed = Some(name);
                break;
            }
        }
        let closed = closed.expect("some track of the running example is closable");
        assert_ne!(l.current().network, before, "closure changed the network");
        assert_eq!(l.closed().count(), 1);
        l.apply(&ScenarioDelta::Reopen { track: closed })
            .expect("accepted");
        assert_eq!(
            l.current().network,
            before,
            "reopen restores the exact network (ids and all)"
        );
    }

    #[test]
    fn remove_then_add_roundtrips_the_schedule_tail() {
        let mut l = live();
        let run = l.current().schedule.runs()[0].clone();
        let name = run.train.name.clone();
        l.apply(&ScenarioDelta::Remove {
            train: name.clone(),
        })
        .expect("accepted");
        assert!(l
            .current()
            .schedule
            .runs()
            .iter()
            .all(|r| r.train.name != name));
        let net = &l.current().network;
        let origin = net.stations()[run.origin.index()].name.clone();
        let destination = net.stations()[run.destination.index()].name.clone();
        l.apply(&ScenarioDelta::Add(DeltaRun {
            train: name.clone(),
            length: run.train.length,
            max_speed: run.train.max_speed,
            origin,
            destination,
            departure: run.departure,
            arrival: run.arrival,
        }))
        .expect("accepted");
        let added = l.current().schedule.runs().last().unwrap().clone();
        assert_eq!(added.train, run.train);
        assert_eq!(added.origin, run.origin);
        assert_eq!(added.destination, run.destination);
    }

    #[test]
    fn double_close_is_rejected() {
        let mut l = live();
        let name = l.current().network.tracks()[0].name.clone();
        if l.apply(&ScenarioDelta::Close {
            track: name.clone(),
        })
        .is_ok()
        {
            let err = l
                .apply(&ScenarioDelta::Close { track: name })
                .expect_err("rejected");
            assert!(err.message.contains("already closed"), "{err}");
        }
    }
}
