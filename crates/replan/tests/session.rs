//! Session-level behaviour: warm reuse, cold fallback, staleness, and
//! agreement with the one-shot incremental loop.

use etcs_core::{optimize_incremental, DesignOutcome, EncoderConfig};
use etcs_network::{fixtures, Seconds};
use etcs_replan::{ReplanConfig, ReplanSession, ScenarioDelta};

fn cold_costs(scenario: &etcs_network::Scenario) -> Option<Vec<u64>> {
    let (out, _) = optimize_incremental(scenario, &EncoderConfig::default()).expect("valid");
    match out {
        DesignOutcome::Solved { costs, .. } => Some(costs),
        DesignOutcome::Infeasible => None,
    }
}

#[test]
fn deadline_delta_is_a_warm_hit_with_unchanged_optima() {
    let mut s = ReplanSession::new(fixtures::running_example(), ReplanConfig::default()).unwrap();
    let first = s.tick();
    assert!(first.feasible && !first.warm && !first.stale);
    s.apply(&ScenarioDelta::Deadline {
        train: "Train 1".into(),
        arrival: Some(Seconds(240)),
    })
    .unwrap();
    let second = s.tick();
    assert!(second.warm, "deadline deltas keep the scenario core");
    assert!(!second.stale);
    assert_eq!(first.costs, second.costs, "optima are core-determined");
    assert!(
        second.conflicts <= first.conflicts,
        "warm tick re-solves on learnt state: {} > {}",
        second.conflicts,
        first.conflicts
    );
    let stats = s.stats();
    assert_eq!(stats.ticks, 2);
    assert_eq!(stats.warm_hits, 1);
    assert_eq!(stats.cold_fallbacks, 1);
    assert_eq!(stats.deadline_misses, 0);
}

#[test]
fn delay_falls_back_cold_and_matches_the_one_shot_loop() {
    let mut s = ReplanSession::new(fixtures::running_example(), ReplanConfig::default()).unwrap();
    s.tick();
    s.apply(&ScenarioDelta::Delay {
        train: "Train 1".into(),
        by: Seconds(30),
    })
    .unwrap();
    let r = s.tick();
    assert!(!r.warm, "a departure change invalidates the core");
    let cold = cold_costs(s.current());
    match cold {
        Some(costs) => {
            assert!(r.feasible);
            assert_eq!(r.costs, costs);
        }
        None => assert!(!r.feasible, "session disagrees with cold solve"),
    }
    assert_eq!(s.stats().cold_fallbacks, 2);
}

#[test]
fn tightened_deadline_surfaces_late_trains() {
    let mut s = ReplanSession::new(fixtures::running_example(), ReplanConfig::default()).unwrap();
    let relaxed = s.tick();
    assert!(relaxed.feasible);
    let completion = relaxed.costs[0];
    // An arrival deadline one step before the proven optimum cannot be
    // met: the plan stands, the report flags the train.
    let impossible = (completion - 2) * s.current().r_t.as_u64();
    s.apply(&ScenarioDelta::Deadline {
        train: "Train 1".into(),
        arrival: Some(Seconds(impossible.max(1))),
    })
    .unwrap();
    let r = s.tick();
    assert!(r.feasible && r.warm);
    // Whether "Train 1" specifically is late depends on which optimal
    // plan the solver found; the report must at least be consistent:
    // every reported train exists and holds a deadline.
    for name in &r.late_trains {
        let run = s
            .current()
            .schedule
            .runs()
            .iter()
            .find(|run| run.train.name == *name)
            .expect("late train is scheduled");
        assert!(run.arrival.is_some(), "late train has a deadline");
    }
}

#[test]
fn close_then_reopen_rehits_the_cached_core() {
    let base = fixtures::running_example();
    let mut s = ReplanSession::new(base.clone(), ReplanConfig::default()).unwrap();
    let first = s.tick();
    assert!(first.feasible);

    // Find a closable track (accepted delta) whose closure still leaves
    // a feasible scenario; the fixture has parallel station tracks.
    let names: Vec<String> = base
        .network
        .tracks()
        .iter()
        .map(|t| t.name.clone())
        .collect();
    let mut closed = None;
    for name in names {
        if s.apply(&ScenarioDelta::Close {
            track: name.clone(),
        })
        .is_ok()
        {
            closed = Some(name);
            break;
        }
    }
    let closed = closed.expect("some track closes cleanly");
    let during = s.tick();
    assert!(!during.warm, "topology change is a cold fallback");
    assert_eq!(
        cold_costs(s.current()).is_some(),
        during.feasible,
        "closed-track verdict matches the one-shot loop"
    );

    s.apply(&ScenarioDelta::Reopen { track: closed }).unwrap();
    let after = s.tick();
    assert!(after.warm, "reopening returns to the cached core");
    assert_eq!(
        after.costs, first.costs,
        "restored scenario, restored optima"
    );
    let stats = s.stats();
    assert_eq!(stats.ticks, 3);
    assert_eq!(stats.warm_hits, 1);
    assert_eq!(stats.cold_fallbacks, 2);
}

#[test]
fn cancelled_session_degrades_to_stale_plans() {
    let mut s = ReplanSession::new(fixtures::running_example(), ReplanConfig::default()).unwrap();
    let fresh = s.tick();
    assert!(fresh.feasible && !fresh.stale);

    s.interrupt().trigger();
    let stale = s.tick();
    assert!(stale.stale, "a triggered session token misses the tick");
    assert!(stale.feasible, "the last valid verdict is echoed");
    assert_eq!(stale.costs, fresh.costs, "the last valid costs are echoed");
    assert_eq!(stale.plan, fresh.plan, "the last valid plan is echoed");
    assert!(stale.late_trains.is_empty(), "no claims about a stale plan");
    let stats = s.stats();
    assert_eq!(stats.deadline_misses, 1);
    assert_eq!(stats.ticks, 2);
}

#[test]
fn stale_before_any_plan_reports_infeasible_emptiness() {
    let mut s = ReplanSession::new(fixtures::running_example(), ReplanConfig::default()).unwrap();
    s.interrupt().trigger();
    let r = s.tick();
    assert!(r.stale);
    assert!(!r.feasible);
    assert!(r.costs.is_empty() && r.plan.is_none());
}

#[test]
fn lazy_sessions_match_eager_optima_and_count_cold() {
    let lazy_cfg = ReplanConfig {
        lazy: true,
        ..ReplanConfig::default()
    };
    let mut lazy = ReplanSession::new(fixtures::running_example(), lazy_cfg).unwrap();
    let mut eager =
        ReplanSession::new(fixtures::running_example(), ReplanConfig::default()).unwrap();
    for _ in 0..2 {
        let l = lazy.tick();
        let e = eager.tick();
        assert_eq!(l.feasible, e.feasible);
        assert_eq!(l.costs, e.costs);
        assert!(!l.warm, "lazy ticks re-encode");
    }
    assert_eq!(lazy.stats().cold_fallbacks, 2);
    assert_eq!(lazy.stats().warm_hits, 0);
}

#[test]
fn rejected_delta_counts_and_preserves_ticking() {
    let mut s = ReplanSession::new(fixtures::running_example(), ReplanConfig::default()).unwrap();
    let first = s.tick();
    s.apply(&ScenarioDelta::Remove {
        train: "nonexistent".into(),
    })
    .expect_err("rejected");
    let second = s.tick();
    assert!(second.warm, "rejected deltas leave the core untouched");
    assert_eq!(first.costs, second.costs);
    let stats = s.stats();
    assert_eq!(stats.rejected_deltas, 1);
    assert_eq!(stats.deltas, 0);
}
