//! # etcs-testkit — deterministic randomness for property tests
//!
//! The workspace must build and test without network access, so the usual
//! `proptest`/`rand` stack is replaced by this dependency-free kit:
//!
//! * [`Rng`] — a splitmix64 generator with the handful of sampling helpers
//!   the tests need;
//! * [`cases`] — a fixed-count property runner that derives one seed per
//!   case and reports the failing case's seed so it can be replayed with
//!   [`Rng::new`] in a scratch test.
//!
//! The generators are deterministic: a test failure reproduces exactly on
//! re-run, which doubles as the regression corpus (no `.proptest-regressions`
//! files to manage).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// A splitmix64 pseudo-random generator.
///
/// Statistically solid for test-case generation, trivially seedable, and
/// `Copy`-cheap. Not for cryptography.
///
/// # Examples
///
/// ```
/// use etcs_testkit::Rng;
/// let mut rng = Rng::new(42);
/// let a = rng.next_u64();
/// let b = rng.next_u64();
/// assert_ne!(a, b);
/// assert_eq!(Rng::new(42).next_u64(), a, "deterministic per seed");
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed; equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `usize` in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform `usize` in `lo..hi` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// A uniformly random boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A reference to a uniformly chosen element.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    /// A vector of `len` values drawn from `f`.
    pub fn vec<T>(&mut self, len: usize, mut f: impl FnMut(&mut Rng) -> T) -> Vec<T> {
        (0..len).map(|_| f(self)).collect()
    }
}

/// Runs `property` for `count` independently seeded cases.
///
/// On a panic inside the property, the failing case index and seed are
/// appended to the panic message, then the panic is propagated so the test
/// fails normally.
///
/// # Examples
///
/// ```
/// etcs_testkit::cases(32, |rng| {
///     let n = rng.range(1, 100);
///     assert!(n >= 1 && n < 100);
/// });
/// ```
pub fn cases(count: usize, property: impl Fn(&mut Rng)) {
    for case in 0..count {
        // Golden-ratio stride keeps per-case streams decorrelated.
        let seed = (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xe7c5_d1e0_93a1_b2c4;
        let mut rng = Rng::new(seed);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| property(&mut rng))) {
            let detail =
                format!("property failed at case {case}/{count}, replay with Rng::new({seed:#x})");
            // Fold the replay line into the panic message itself so it
            // survives output capture and appears in CI failure summaries.
            // Non-string payloads (rare) keep their type and the replay
            // line goes to stderr instead.
            let text = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned());
            match text {
                Some(msg) => panic!("{msg}\n{detail}"),
                None => {
                    eprintln!("{detail}");
                    resume_unwind(payload);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = Rng::new(1);
        for _ in 0..1000 {
            assert!(rng.below(17) < 17);
            let x = rng.range(5, 9);
            assert!((5..9).contains(&x));
        }
    }

    #[test]
    fn bool_takes_both_values() {
        let mut rng = Rng::new(3);
        let trues = (0..100).filter(|_| rng.bool()).count();
        assert!(trues > 20 && trues < 80, "suspicious bias: {trues}/100");
    }

    #[test]
    fn pick_covers_all_elements() {
        let items = [1, 2, 3, 4];
        let mut rng = Rng::new(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*rng.pick(&items) - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn cases_runs_every_case() {
        use std::cell::Cell;
        let ran = Cell::new(0usize);
        cases(10, |_| ran.set(ran.get() + 1));
        assert_eq!(ran.get(), 10);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn cases_propagates_failures() {
        cases(5, |rng| {
            if rng.below(2) < 2 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn cases_panic_message_names_the_case_and_seed() {
        let err = catch_unwind(|| {
            cases(8, |rng| {
                // Deterministically fail at the third case only.
                assert_ne!(rng.next_u64() % 8, 2, "planted failure");
            });
        })
        .expect_err("the planted failure must propagate");
        let msg = err
            .downcast_ref::<String>()
            .expect("assert! panics carry a String payload");
        assert!(
            msg.contains("planted failure"),
            "original message kept: {msg}"
        );
        assert!(
            msg.contains("failed at case ") && msg.contains("/8"),
            "case index folded into the panic message: {msg}"
        );
        assert!(
            msg.contains("replay with Rng::new(0x"),
            "replay seed folded into the panic message: {msg}"
        );
    }

    #[test]
    fn below_one_is_always_zero() {
        let mut rng = Rng::new(11);
        for _ in 0..100 {
            assert_eq!(rng.below(1), 0);
        }
    }

    #[test]
    fn singleton_range_is_constant() {
        let mut rng = Rng::new(13);
        for _ in 0..100 {
            assert_eq!(rng.range(41, 42), 41);
        }
    }

    #[test]
    fn below_handles_huge_bounds() {
        // `usize::MAX`-scale bounds must neither overflow nor collapse the
        // distribution (the modulo is computed in u64).
        let mut rng = Rng::new(17);
        let mut distinct = std::collections::BTreeSet::new();
        for _ in 0..64 {
            let x = rng.below(usize::MAX);
            assert!(x < usize::MAX);
            distinct.insert(x);
        }
        assert!(distinct.len() > 60, "huge bound collapsed: {distinct:?}");
        let hi = rng.range(usize::MAX - 1, usize::MAX);
        assert_eq!(hi, usize::MAX - 1, "highest singleton range");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn below_zero_panics() {
        Rng::new(1).below(0);
    }

    #[test]
    #[should_panic(expected = "empty range 5..5")]
    fn empty_range_panics() {
        Rng::new(1).range(5, 5);
    }

    #[test]
    #[should_panic(expected = "empty range 7..3")]
    fn inverted_range_panics() {
        Rng::new(1).range(7, 3);
    }
}
