//! Corpus families and size classes: the parameter space of the corpus.
//!
//! A family is a *shape* of railway operation; a size class scales that
//! shape from today's fixture sizes to hundreds of trains. The mapping
//! from (family, size, seed) to a concrete [`Scenario`] is pure and
//! version-pinned (see [`crate::Manifest::FORMAT_VERSION`]): the seed only
//! feeds the deterministic link-length stream of the underlying
//! `etcs_network::generator` builders.

use etcs_network::generator::{
    branched_line, grid_ladder, single_track_line, station_throat, BranchConfig, GridConfig,
    LineConfig, ThroatConfig,
};
use etcs_network::{Scenario, Schedule, Seconds};
use etcs_testkit::Rng;

/// A scenario family of the corpus.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Family {
    /// Parallel single-track lines joined by crossover rungs: the
    /// junction-rich grid/ladder regime (every rung column is a cluster of
    /// degree-3/4 nodes; cross trains must thread a rung).
    GridLadder,
    /// A one-directional convoy chasing down a single-track line with
    /// crossing loops: same-direction conflicts in a narrow space-time
    /// band trailing the leader (the lazy loop's favourable regime).
    ConvoyChain,
    /// `arms` single-track arms merging into one shared trunk: a
    /// star-shaped mesh whose junction node has degree `arms + 1`.
    BranchedMesh,
    /// Two approaches meeting a yard of parallel sidings between two
    /// throat nodes: the interlocking regime where VSS borders inside the
    /// sidings decide staging capacity.
    StationThroat,
    /// A moving-block/hybrid-Level-3 line following Engels & Wille
    /// (arXiv:2405.18977): no crossing loops, a fine spatial grid and a
    /// tight-headway convoy, so capacity comes entirely from VSS borders
    /// trailing each train.
    MovingBlock,
}

impl Family {
    /// Every family, in canonical order.
    pub const ALL: [Family; 5] = [
        Family::GridLadder,
        Family::ConvoyChain,
        Family::BranchedMesh,
        Family::StationThroat,
        Family::MovingBlock,
    ];

    /// Stable snake_case name (used in manifests, artifacts and exemplar
    /// file names).
    pub fn name(self) -> &'static str {
        match self {
            Family::GridLadder => "grid_ladder",
            Family::ConvoyChain => "convoy_chain",
            Family::BranchedMesh => "branched_mesh",
            Family::StationThroat => "station_throat",
            Family::MovingBlock => "moving_block",
        }
    }

    /// Inverse of [`Family::name`].
    pub fn from_name(name: &str) -> Option<Family> {
        Family::ALL.into_iter().find(|f| f.name() == name)
    }
}

/// How big an instance of a family is.
///
/// `Small` mirrors the sizes of the repository's hand-built fixtures (the
/// regime every solve configuration handles in milliseconds); `Huge`
/// reaches hundreds of trains — generation and validation stay cheap
/// there, solving is benchmark territory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SizeClass {
    /// Fixture-sized: a handful of stations and 2–5 trains.
    Small,
    /// Roughly double the fixtures in every dimension.
    Medium,
    /// Tens of trains on a junction-rich topology.
    Large,
    /// Hundreds of trains; generation-and-analysis scale.
    Huge,
}

impl SizeClass {
    /// Every size class, smallest first.
    pub const ALL: [SizeClass; 4] = [
        SizeClass::Small,
        SizeClass::Medium,
        SizeClass::Large,
        SizeClass::Huge,
    ];

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            SizeClass::Small => "small",
            SizeClass::Medium => "medium",
            SizeClass::Large => "large",
            SizeClass::Huge => "huge",
        }
    }

    /// Inverse of [`SizeClass::name`].
    pub fn from_name(name: &str) -> Option<SizeClass> {
        SizeClass::ALL.into_iter().find(|s| s.name() == name)
    }
}

/// One corpus instance: family × size × seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct InstanceSpec {
    /// The scenario family.
    pub family: Family,
    /// The size class.
    pub size: SizeClass,
    /// Seed for the family's deterministic parameter stream.
    pub seed: u64,
}

impl InstanceSpec {
    /// Creates a spec.
    pub fn new(family: Family, size: SizeClass, seed: u64) -> Self {
        InstanceSpec { family, size, seed }
    }

    /// The canonical scenario name, `corpus-{family}-{size}-seed{seed}`.
    pub fn canonical_name(&self) -> String {
        format!(
            "corpus-{}-{}-seed{}",
            self.family.name(),
            self.size.name(),
            self.seed
        )
    }

    /// Builds the scenario. Pure: equal specs yield identical scenarios.
    ///
    /// Every run is given an arrival deadline at the horizon (see
    /// [`Scenario::with_horizon_arrivals`]) so the verification and
    /// generation tasks are well-defined on corpus instances.
    pub fn build(&self) -> Scenario {
        let mut scenario = match self.family {
            Family::GridLadder => build_grid(self.size, self.seed),
            Family::ConvoyChain => build_convoy(self.size, self.seed),
            Family::BranchedMesh => build_mesh(self.size, self.seed),
            Family::StationThroat => build_throat(self.size, self.seed),
            Family::MovingBlock => build_moving_block(self.size, self.seed),
        }
        .with_horizon_arrivals();
        scenario.name = self.canonical_name();
        scenario
    }
}

/// Builds `count` scenarios of one family and size, with per-instance
/// seeds drawn from a splitmix64 stream over `base_seed` — the sampling
/// entry point the test suites use (`etcs_testkit::Rng` provides the
/// stream, so a failing instance is replayable from its printed seed).
pub fn sample(family: Family, size: SizeClass, count: usize, base_seed: u64) -> Vec<Scenario> {
    sample_specs(family, size, count, base_seed)
        .iter()
        .map(InstanceSpec::build)
        .collect()
}

/// The specs [`sample`] builds, for callers that need the seeds too.
pub fn sample_specs(
    family: Family,
    size: SizeClass,
    count: usize,
    base_seed: u64,
) -> Vec<InstanceSpec> {
    let mut rng = Rng::new(base_seed);
    (0..count)
        .map(|_| InstanceSpec::new(family, size, rng.next_u64()))
        .collect()
}

fn build_grid(size: SizeClass, seed: u64) -> Scenario {
    let (rows, cols, rung_every, trains_per_row, cross_trains, horizon_min) = match size {
        SizeClass::Small => (2, 3, 1, 1, 1, 12),
        // Dense rungs (`rung_every: 1`) are load-bearing at this size: with
        // rungs only every other column, two trains per row contending for
        // the sparse crossovers push the optimiser past 100s per instance,
        // while the dense grid solves in under a second.
        SizeClass::Medium => (2, 5, 1, 2, 2, 20),
        SizeClass::Large => (3, 8, 2, 3, 4, 35),
        SizeClass::Huge => (6, 24, 3, 10, 15, 120),
    };
    grid_ladder(&GridConfig {
        rows,
        cols,
        rung_every,
        trains_per_row,
        cross_trains,
        horizon: Seconds::from_minutes(horizon_min),
        seed,
        ..GridConfig::default()
    })
}

fn build_convoy(size: SizeClass, seed: u64) -> Scenario {
    let (stations, loop_every, convoy, horizon_min) = match size {
        SizeClass::Small => (4, 2, 3, 15),
        SizeClass::Medium => (8, 2, 5, 30),
        SizeClass::Large => (14, 2, 8, 50),
        SizeClass::Huge => (60, 3, 250, 600),
    };
    let mut scenario = single_track_line(&LineConfig {
        stations,
        loop_every,
        trains_per_direction: convoy,
        horizon: Seconds::from_minutes(horizon_min),
        seed,
        ..LineConfig::default()
    });
    // Keep only the eastbound half: a one-directional convoy chain.
    let runs = scenario
        .schedule
        .runs()
        .iter()
        .filter(|r| r.train.name.starts_with("East"))
        .cloned()
        .collect();
    scenario.schedule = Schedule::new(runs);
    scenario
}

fn build_mesh(size: SizeClass, seed: u64) -> Scenario {
    let (arms, arm_stations, trunk_stations, trains_per_arm, horizon_min) = match size {
        SizeClass::Small => (2, 0, 1, 1, 12),
        SizeClass::Medium => (3, 1, 2, 2, 20),
        SizeClass::Large => (5, 2, 3, 3, 35),
        SizeClass::Huge => (12, 4, 6, 18, 120),
    };
    branched_line(&BranchConfig {
        arms,
        arm_stations,
        trunk_stations,
        trains_per_arm,
        horizon: Seconds::from_minutes(horizon_min),
        seed,
        ..BranchConfig::default()
    })
}

fn build_throat(size: SizeClass, seed: u64) -> Scenario {
    let (sidings, approach_stations, trains_per_direction, horizon_min) = match size {
        SizeClass::Small => (2, 0, 1, 12),
        SizeClass::Medium => (3, 1, 2, 20),
        SizeClass::Large => (4, 2, 5, 40),
        SizeClass::Huge => (12, 3, 60, 240),
    };
    station_throat(&ThroatConfig {
        sidings,
        approach_stations,
        trains_per_direction,
        horizon: Seconds::from_minutes(horizon_min),
        seed,
        ..ThroatConfig::default()
    })
}

fn build_moving_block(size: SizeClass, seed: u64) -> Scenario {
    let (stations, convoy, horizon_min) = match size {
        SizeClass::Small => (3, 2, 12),
        SizeClass::Medium => (5, 4, 25),
        SizeClass::Large => (8, 6, 45),
        SizeClass::Huge => (30, 200, 600),
    };
    let mut scenario = single_track_line(&LineConfig {
        stations,
        // Moving block: no crossing loops — following distance is governed
        // purely by VSS borders trailing each train.
        loop_every: 0,
        trains_per_direction: convoy,
        // A finer spatial grid (more candidate borders per TTD) and a
        // tight headway: the hybrid-Level-3 setting of Engels & Wille.
        r_s: etcs_network::Meters(250),
        link_m: 750,
        headway: Seconds::from_minutes(1),
        horizon: Seconds::from_minutes(horizon_min),
        seed,
        ..LineConfig::default()
    });
    let runs = scenario
        .schedule
        .runs()
        .iter()
        .filter(|r| r.train.name.starts_with("East"))
        .cloned()
        .collect();
    scenario.schedule = Schedule::new(runs);
    scenario
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for f in Family::ALL {
            assert_eq!(Family::from_name(f.name()), Some(f));
        }
        for s in SizeClass::ALL {
            assert_eq!(SizeClass::from_name(s.name()), Some(s));
        }
        assert_eq!(Family::from_name("nope"), None);
        assert_eq!(SizeClass::from_name("nope"), None);
    }

    #[test]
    fn every_family_small_and_medium_is_valid_and_discretises() {
        for family in Family::ALL {
            for size in [SizeClass::Small, SizeClass::Medium] {
                for seed in [1, 7, 99] {
                    let spec = InstanceSpec::new(family, size, seed);
                    let s = spec.build();
                    s.validate()
                        .unwrap_or_else(|e| panic!("{}: {e}", spec.canonical_name()));
                    let d = s
                        .discretise()
                        .unwrap_or_else(|e| panic!("{}: {e}", spec.canonical_name()));
                    assert!(d.num_edges() > 0);
                    assert!(!s.schedule.is_empty());
                }
            }
        }
    }

    #[test]
    fn large_instances_are_valid_per_family() {
        for family in Family::ALL {
            let spec = InstanceSpec::new(family, SizeClass::Large, 5);
            let s = spec.build();
            s.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", spec.canonical_name()));
            s.discretise()
                .unwrap_or_else(|e| panic!("{}: {e}", spec.canonical_name()));
        }
    }

    #[test]
    fn huge_instances_reach_hundreds_of_trains() {
        // The corpus scaling claim, pinned: the Huge convoy and
        // moving-block instances carry 200+ trains and still validate and
        // discretise (solving them is bench territory, not test).
        for (family, min_trains) in [
            (Family::ConvoyChain, 250),
            (Family::MovingBlock, 200),
            (Family::BranchedMesh, 200),
            (Family::StationThroat, 100),
            (Family::GridLadder, 100),
        ] {
            let spec = InstanceSpec::new(family, SizeClass::Huge, 1);
            let s = spec.build();
            assert!(
                s.schedule.len() >= min_trains,
                "{}: {} trains",
                spec.canonical_name(),
                s.schedule.len()
            );
            s.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", spec.canonical_name()));
            s.discretise()
                .unwrap_or_else(|e| panic!("{}: {e}", spec.canonical_name()));
        }
    }

    #[test]
    fn build_is_deterministic() {
        for family in Family::ALL {
            let spec = InstanceSpec::new(family, SizeClass::Small, 1234);
            let a = spec.build();
            let b = spec.build();
            assert_eq!(a.network, b.network, "{}", spec.canonical_name());
            assert_eq!(a.schedule, b.schedule, "{}", spec.canonical_name());
        }
    }

    #[test]
    fn seed_changes_the_network() {
        // A Small instance has so few links that two seeds can quantise to
        // the same lengths; a Large grid has dozens of independent draws,
        // so distinct seeds must differ there.
        let a = InstanceSpec::new(Family::GridLadder, SizeClass::Large, 1234).build();
        let c = InstanceSpec::new(Family::GridLadder, SizeClass::Large, 4321).build();
        assert_ne!(a.network, c.network);
    }

    #[test]
    fn every_run_has_an_arrival_deadline() {
        for family in Family::ALL {
            let s = InstanceSpec::new(family, SizeClass::Small, 2).build();
            assert!(
                s.schedule.runs().iter().all(|r| r.arrival.is_some()),
                "{family:?}: corpus instances must have deadlines"
            );
        }
    }

    #[test]
    fn sample_derives_distinct_seeds() {
        let specs = sample_specs(Family::ConvoyChain, SizeClass::Small, 8, 7);
        let seeds: std::collections::BTreeSet<_> = specs.iter().map(|s| s.seed).collect();
        assert_eq!(seeds.len(), 8, "splitmix stream must not collide");
        let again = sample_specs(Family::ConvoyChain, SizeClass::Small, 8, 7);
        assert_eq!(specs, again, "sampling is deterministic per base seed");
        let scenarios = sample(Family::ConvoyChain, SizeClass::Small, 3, 7);
        assert_eq!(scenarios.len(), 3);
        assert_ne!(scenarios[0].network, scenarios[1].network);
    }
}
