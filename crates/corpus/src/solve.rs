//! The solve configurations the corpus is swept across.
//!
//! A [`SolveSetup`] names one way of running the optimisation task on a
//! corpus instance: the eager incremental loop, the lazy CEGAR loop, the
//! clause-sharing portfolio, or the eager loop over the certified
//! preprocessor. All four are proven verdict-equivalent by
//! `tests/corpus_equivalence.rs`; `bench_corpus` reports their
//! distributional behaviour per family.

use std::time::Duration;

use etcs_core::{optimize_incremental, DesignOutcome, EncoderConfig, SolveMode};
use etcs_lazy::{optimize_lazy, LazyConfig};
use etcs_network::{NetworkError, Scenario};

/// One solve configuration of the corpus sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SolveSetup {
    /// The eager incremental optimisation loop (`optimize_incremental`
    /// with the default encoder config).
    Eager,
    /// The lazy CEGAR loop (`optimize_lazy`, `AllViolated` selection).
    Lazy,
    /// The eager loop over a two-worker clause-sharing portfolio
    /// (`SolveMode::Portfolio(2)`).
    Portfolio,
    /// The eager loop with certified CNF preprocessing enabled.
    Preprocess,
}

impl SolveSetup {
    /// Every setup, in sweep order.
    pub const ALL: [SolveSetup; 4] = [
        SolveSetup::Eager,
        SolveSetup::Lazy,
        SolveSetup::Portfolio,
        SolveSetup::Preprocess,
    ];

    /// Stable lowercase name (artifact key).
    pub fn name(self) -> &'static str {
        match self {
            SolveSetup::Eager => "eager",
            SolveSetup::Lazy => "lazy",
            SolveSetup::Portfolio => "portfolio",
            SolveSetup::Preprocess => "preprocess",
        }
    }

    /// The encoder configuration this setup solves under. For
    /// [`SolveSetup::Lazy`] this is the default config (the lazy loop's
    /// own [`LazyConfig`] carries the CEGAR knobs).
    pub fn encoder_config(self) -> EncoderConfig {
        match self {
            SolveSetup::Eager | SolveSetup::Lazy => EncoderConfig::default(),
            SolveSetup::Portfolio => {
                EncoderConfig::default().with_solve_mode(SolveMode::Portfolio(2))
            }
            SolveSetup::Preprocess => EncoderConfig::default().with_preprocess(true),
        }
    }

    /// Runs the optimisation task on `scenario` under this setup.
    ///
    /// # Errors
    ///
    /// Propagates [`NetworkError`] if the scenario is malformed.
    pub fn optimize(self, scenario: &Scenario) -> Result<OptimizeOutcome, NetworkError> {
        match self {
            SolveSetup::Lazy => {
                let (outcome, report) =
                    optimize_lazy(scenario, &self.encoder_config(), &LazyConfig::default())?;
                Ok(OptimizeOutcome {
                    outcome,
                    // The lazy loop starts from a relaxation: its clause
                    // mass is the relaxed encoding plus every refinement.
                    clauses: report.report.stats.clauses + report.clauses_added,
                    runtime: report.report.runtime,
                    solver_calls: report.report.solver_calls,
                })
            }
            _ => {
                let (outcome, report) = optimize_incremental(scenario, &self.encoder_config())?;
                Ok(OptimizeOutcome {
                    outcome,
                    clauses: report.stats.clauses,
                    runtime: report.runtime,
                    solver_calls: report.solver_calls,
                })
            }
        }
    }
}

/// What one [`SolveSetup::optimize`] run produced.
#[derive(Debug)]
pub struct OptimizeOutcome {
    /// The task outcome (plan + proven optima, or infeasible).
    pub outcome: DesignOutcome,
    /// Clause mass the run pushed through the solver (for the lazy loop:
    /// relaxed encoding plus refinement clauses).
    pub clauses: usize,
    /// Wall-clock time spent encoding and solving.
    pub runtime: Duration,
    /// Solver invocations the run made.
    pub solver_calls: usize,
}

impl OptimizeOutcome {
    /// `"solved"` or `"infeasible"` (artifact vocabulary).
    pub fn verdict(&self) -> &'static str {
        match self.outcome {
            DesignOutcome::Solved { .. } => "solved",
            DesignOutcome::Infeasible => "infeasible",
        }
    }

    /// The proven optimal costs, if solved.
    pub fn costs(&self) -> Option<&[u64]> {
        match &self.outcome {
            DesignOutcome::Solved { costs, .. } => Some(costs),
            DesignOutcome::Infeasible => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Family, InstanceSpec, SizeClass};

    #[test]
    fn names_are_distinct() {
        let names: std::collections::BTreeSet<_> =
            SolveSetup::ALL.into_iter().map(SolveSetup::name).collect();
        assert_eq!(names.len(), SolveSetup::ALL.len());
    }

    #[test]
    fn all_setups_agree_on_one_small_instance() {
        let scenario = InstanceSpec::new(Family::ConvoyChain, SizeClass::Small, 11).build();
        let outcomes: Vec<_> = SolveSetup::ALL
            .into_iter()
            .map(|s| s.optimize(&scenario).expect("valid corpus instance"))
            .collect();
        let baseline = &outcomes[0];
        for (setup, o) in SolveSetup::ALL.into_iter().zip(&outcomes).skip(1) {
            assert_eq!(o.verdict(), baseline.verdict(), "{}", setup.name());
            assert_eq!(o.costs(), baseline.costs(), "{}", setup.name());
            assert!(o.clauses > 0, "{}", setup.name());
        }
    }
}
