//! Versioned corpus manifests: which instances make up a corpus.
//!
//! A manifest is a list of (family, size, count, base seed) rows; the
//! concrete instance seeds are derived from each row's base seed through
//! the `etcs_testkit` splitmix64 stream. The manifest plus
//! [`Manifest::FORMAT_VERSION`] fully determines every scenario in the
//! corpus — `BENCH_corpus.json` records both so an artifact is replayable
//! from its header alone.

use crate::family::{sample_specs, Family, InstanceSpec, SizeClass};

/// One row of a [`Manifest`]: `count` instances of a family at one size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ManifestEntry {
    /// The scenario family.
    pub family: Family,
    /// The size class.
    pub size: SizeClass,
    /// How many instances this row contributes.
    pub count: usize,
    /// Base seed of the row's splitmix64 seed stream.
    pub base_seed: u64,
}

impl ManifestEntry {
    /// The instance specs of this row, seeds derived deterministically
    /// from `base_seed`.
    pub fn specs(&self) -> Vec<InstanceSpec> {
        sample_specs(self.family, self.size, self.count, self.base_seed)
    }
}

/// A named, versioned corpus: the unit `bench_corpus` sweeps.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Corpus format version (see [`Manifest::FORMAT_VERSION`]).
    pub version: u32,
    /// Human-readable corpus label (artifact key).
    pub label: &'static str,
    /// The rows.
    pub entries: Vec<ManifestEntry>,
}

impl Manifest {
    /// The corpus format version. Bump this when any family's
    /// construction changes — checked-in exemplars and `BENCH_corpus.json`
    /// are only comparable within one version.
    pub const FORMAT_VERSION: u32 = 1;

    /// The CI-sized corpus: every family at [`SizeClass::Small`], a few
    /// instances each. `bench_corpus --smoke` sweeps this in seconds.
    pub fn smoke() -> Manifest {
        Manifest {
            version: Self::FORMAT_VERSION,
            label: "smoke",
            entries: Family::ALL
                .into_iter()
                .map(|family| ManifestEntry {
                    family,
                    size: SizeClass::Small,
                    count: 2,
                    base_seed: 0xC0FFEE,
                })
                .collect(),
        }
    }

    /// The standard distribution corpus behind the checked-in
    /// `BENCH_corpus.json`: every family at Small and Medium, 55
    /// instances in total.
    pub fn standard() -> Manifest {
        let mut entries = Vec::new();
        for family in Family::ALL {
            entries.push(ManifestEntry {
                family,
                size: SizeClass::Small,
                count: 7,
                base_seed: 0xE7C5_0001,
            });
            entries.push(ManifestEntry {
                family,
                size: SizeClass::Medium,
                count: 4,
                base_seed: 0xE7C5_0002,
            });
        }
        Manifest {
            version: Self::FORMAT_VERSION,
            label: "standard",
            entries,
        }
    }

    /// Every instance spec of the corpus, manifest order.
    pub fn specs(&self) -> Vec<InstanceSpec> {
        self.entries.iter().flat_map(ManifestEntry::specs).collect()
    }

    /// Total instance count.
    pub fn total(&self) -> usize {
        self.entries.iter().map(|e| e.count).sum()
    }

    /// The distinct families the manifest covers.
    pub fn families(&self) -> Vec<Family> {
        let mut fams: Vec<_> = self.entries.iter().map(|e| e.family).collect();
        fams.sort();
        fams.dedup();
        fams
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_has_at_least_fifty_instances_across_four_families() {
        let m = Manifest::standard();
        assert!(m.total() >= 50, "{} instances", m.total());
        assert!(m.families().len() >= 4, "{:?}", m.families());
        assert_eq!(m.specs().len(), m.total());
        assert_eq!(m.version, Manifest::FORMAT_VERSION);
    }

    #[test]
    fn smoke_covers_every_family() {
        let m = Manifest::smoke();
        assert_eq!(m.families(), Family::ALL.to_vec());
        assert!(m.total() >= 10);
        assert!(m.specs().iter().all(|s| s.size == SizeClass::Small));
    }

    #[test]
    fn specs_are_deterministic_and_distinct() {
        let a = Manifest::standard().specs();
        let b = Manifest::standard().specs();
        assert_eq!(a, b);
        let distinct: std::collections::BTreeSet<_> = a
            .iter()
            .map(|s| (s.family.name(), s.size.name(), s.seed))
            .collect();
        assert_eq!(distinct.len(), a.len(), "corpus instances must be unique");
    }
}
