//! # etcs-corpus — a seeded, deterministic scenario corpus
//!
//! Every verdict this workspace produced before this crate came from a
//! handful of hand-built fixtures and two synthetic generator lines. This
//! crate turns the generators of `etcs_network::generator` into a proper
//! *corpus*: parameterized scenario [families](Family) spanning
//! junction-rich grids, convoy chains, branched meshes, station throats
//! and a moving-block/hybrid-Level-3 family (Engels & Wille,
//! arXiv:2405.18977), each scaling from today's fixture sizes
//! ([`SizeClass::Small`]) up to hundreds of trains ([`SizeClass::Huge`]).
//!
//! The unit of the corpus is an [`InstanceSpec`] — family × size × seed —
//! whose [`build`](InstanceSpec::build) is a pure function: equal specs
//! yield byte-identical scenarios, on every platform, forever (bumping
//! [`Manifest::FORMAT_VERSION`] is the escape hatch when a family's
//! construction must change). A versioned [`Manifest`] names a whole
//! corpus; [`Manifest::standard`] is what the `bench_corpus` binary sweeps
//! and [`Manifest::smoke`] is the CI-sized subset.
//!
//! Every instance the corpus emits is valid by construction: it passes
//! [`Scenario::validate`], discretises, round-trips through the `.rail`
//! format, and its traced CNF passes the `etcs-lint` audit with zero
//! errors — the crate's test suite pins all four properties per family.
//!
//! [`SolveSetup`] is the companion wiring: the four solve configurations
//! (eager / lazy / portfolio / preprocess) the corpus is swept across,
//! dispatching to the matching `etcs-core`/`etcs-lazy` task loop.
//!
//! ## Quick start
//!
//! ```
//! use etcs_corpus::{Family, InstanceSpec, SizeClass};
//!
//! let spec = InstanceSpec::new(Family::GridLadder, SizeClass::Small, 42);
//! let scenario = spec.build();
//! scenario.validate()?;
//! assert_eq!(scenario.name, spec.canonical_name());
//! // Equal specs build byte-identical scenarios.
//! assert_eq!(spec.build().network, scenario.network);
//! # Ok::<(), etcs_network::NetworkError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod family;
mod manifest;
mod solve;

pub use family::{sample, sample_specs, Family, InstanceSpec, SizeClass};
pub use manifest::{Manifest, ManifestEntry};
pub use solve::{OptimizeOutcome, SolveSetup};

use etcs_network::Scenario;

/// The corpus exemplar specs checked in under `scenarios/corpus/` — one
/// small and one large instance for each of the three headline families
/// introduced by this crate. `tests/rail_format.rs` pins the checked-in
/// files byte-for-byte against these specs (the determinism contract made
/// visible in the repository), and the CI `served` smoke loads them
/// through the service's `.rail` file loader.
pub fn exemplars() -> Vec<InstanceSpec> {
    vec![
        InstanceSpec::new(Family::GridLadder, SizeClass::Small, 1),
        InstanceSpec::new(Family::GridLadder, SizeClass::Large, 1),
        InstanceSpec::new(Family::StationThroat, SizeClass::Small, 1),
        InstanceSpec::new(Family::StationThroat, SizeClass::Large, 1),
        InstanceSpec::new(Family::MovingBlock, SizeClass::Small, 1),
        InstanceSpec::new(Family::MovingBlock, SizeClass::Large, 1),
    ]
}

/// The repository-relative path of an exemplar's checked-in `.rail` file.
pub fn exemplar_path(spec: &InstanceSpec) -> String {
    format!(
        "scenarios/corpus/{}_{}.rail",
        spec.family.name(),
        spec.size.name()
    )
}

/// Renders an exemplar spec to its `.rail` document (the exact bytes the
/// checked-in file must contain).
pub fn exemplar_rail(spec: &InstanceSpec) -> String {
    etcs_network::write_scenario(&spec.build())
}

/// Builds every exemplar scenario (spec + scenario pairs).
pub fn build_exemplars() -> Vec<(InstanceSpec, Scenario)> {
    exemplars().into_iter().map(|s| (s, s.build())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exemplars_cover_three_families_small_and_large() {
        let specs = exemplars();
        assert_eq!(specs.len(), 6);
        let families: std::collections::BTreeSet<_> =
            specs.iter().map(|s| s.family.name()).collect();
        assert_eq!(families.len(), 3);
        for f in &families {
            let sizes: Vec<_> = specs
                .iter()
                .filter(|s| s.family.name() == *f)
                .map(|s| s.size)
                .collect();
            assert!(sizes.contains(&SizeClass::Small), "{f}");
            assert!(sizes.contains(&SizeClass::Large), "{f}");
        }
    }

    #[test]
    fn exemplar_paths_are_distinct() {
        let paths: std::collections::BTreeSet<_> = exemplars().iter().map(exemplar_path).collect();
        assert_eq!(paths.len(), 6);
        assert!(paths
            .iter()
            .all(|p| p.starts_with("scenarios/corpus/") && p.ends_with(".rail")));
    }

    #[test]
    fn traced_corpus_encodings_are_lint_clean() {
        // Lint-clean by construction: the traced generation CNF of one
        // Small instance per family passes the full audit with zero
        // findings.
        let config = etcs_core::EncoderConfig {
            trace: true,
            ..etcs_core::EncoderConfig::default()
        };
        for family in Family::ALL {
            let spec = InstanceSpec::new(family, SizeClass::Small, 3);
            let inst = etcs_core::Instance::new(&spec.build()).expect("valid corpus instance");
            let enc = etcs_core::encode(&inst, &config, &etcs_core::TaskKind::Generate);
            let findings = enc.trace.expect("tracing on").lint();
            assert!(
                findings.is_empty(),
                "{}: corpus encodings must be lint-clean:\n{}",
                spec.canonical_name(),
                etcs_lint::render_report(&findings)
            );
        }
    }

    #[test]
    fn exemplar_rail_parses_back() {
        for (spec, scenario) in build_exemplars() {
            let text = exemplar_rail(&spec);
            let back = etcs_network::parse_scenario(&text)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.canonical_name()));
            assert_eq!(back.network, scenario.network, "{}", spec.canonical_name());
        }
    }
}
