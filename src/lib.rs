//! # etcs — automatic design and verification for ETCS Level 3
//!
//! A from-scratch Rust reproduction of *Towards Automatic Design and
//! Verification for Level 3 of the European Train Control System*
//! (Wille, Peham, Przigoda & Przigoda, DATE 2021).
//!
//! ETCS Level 3 replaces fixed trackside train detection (TTD) blocks with
//! *Virtual Subsections* (VSS). This workspace provides the paper's three
//! design tasks as a library:
//!
//! * [`verify`] — check a train schedule against a TTD/VSS layout,
//! * [`generate`] — synthesise a minimal set of VSS borders making a
//!   schedule feasible,
//! * [`optimize`] — co-design layout and train movements for the fastest
//!   possible completion,
//!
//! together with the full substrate stack: a CDCL SAT solver with MaxSAT
//! optimisation and DRAT proof logging ([`sat`]), railway network modelling
//! and discretisation ([`network`]), an independent plan validator plus a
//! fixed-block dispatcher baseline ([`sim`]), and a CNF encoding lint
//! ([`lint`]). Each design task also has a `*_certified` variant
//! ([`verify_certified`] and friends) that lints the encoding and checks
//! every answer — models against a mirrored formula, UNSAT verdicts against
//! a DRAT proof replayed by an in-repo checker. For long-lived deployments,
//! [`serve`] wraps the tasks in a concurrent job service with admission
//! control, per-job deadlines, cooperative cancellation and a
//! content-addressed result cache (the `served` binary speaks JSONL);
//! [`fleet`] scales that service across processes — rendezvous-hashed
//! routing onto `served --listen` shards with cache replication, crash
//! failover and a checked consistency story.
//! The [`lazy`] module reruns all of the above as counterexample-guided
//! (CEGAR) loops that defer the pairwise train-interaction constraints
//! and refine only the violated instances.
//!
//! ## Quick start
//!
//! ```
//! use etcs::prelude::*;
//!
//! // The paper's running example (Fig. 1): 4 TTDs, 4 trains, 5 minutes.
//! let scenario = fixtures::running_example();
//! let config = EncoderConfig::default();
//!
//! // 1. With pure TTD operation the schedule deadlocks.
//! let (outcome, _) = verify(&scenario, &VssLayout::pure_ttd(), &config)?;
//! assert!(!outcome.is_feasible());
//!
//! // 2. A single virtual border repairs it …
//! let (designed, _) = generate(&scenario, &config)?;
//! let plan = designed.plan().expect("feasible with VSS");
//!
//! // … and the independent simulator agrees the plan is operable.
//! let instance = Instance::new(&scenario)?;
//! assert!(etcs::sim::validate(&instance, plan, true).is_valid());
//! # Ok::<(), etcs::NetworkError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use etcs_core::{
    border_tradeoff, cache_key, diagnose, diagnose_cancellable, diagnose_certified, encode,
    generate, generate_cancellable, generate_certified, generate_obs, optimize, optimize_all,
    optimize_all_obs, optimize_all_with_threads, optimize_arrivals, optimize_cancellable,
    optimize_certified, optimize_incremental, optimize_incremental_cancellable,
    optimize_incremental_obs, optimize_obs, optimize_portfolio, optimize_portfolio_obs,
    optimize_with_budget, verify, verify_all, verify_all_obs, verify_all_with_threads,
    verify_cancellable, verify_certified, verify_obs, Certification, CertifiedVerdict,
    CertifyError, DesignOutcome, Diagnosis, EncoderConfig, Encoding, EncodingStats, EncodingTrace,
    ExitPolicy, Instance, LayoutExplorer, OptimizeMode, SolveMode, SolvedPlan, TaskError, TaskKind,
    TaskReport, TradeoffPoint, TrainPlan, TrainSpec, VerifyOutcome,
};
pub use etcs_network::{
    fixtures, parse_scenario, write_scenario, DiscreteNet, EdgeId, KmPerHour, Meters,
    NetworkBuilder, NetworkError, NodeId, NodeKind, ParseScenarioError, RailwayNetwork, Scenario,
    Schedule, Seconds, Station, StationId, Track, TrackId, Train, TrainId, TrainRun, Ttd, TtdId,
    VssLayout,
};

/// The SAT solving substrate (CDCL, cardinality encodings, MaxSAT).
pub mod sat {
    pub use etcs_sat::*;
}

/// Railway network modelling and the bundled case studies.
pub mod network {
    pub use etcs_network::*;
}

/// Independent plan validation and the fixed-block dispatcher baseline.
pub mod sim {
    pub use etcs_sim::*;
}

/// CNF encoding lint: structural audits over traced formulas.
pub mod lint {
    pub use etcs_lint::*;
}

/// Structured run observability: spans, events, metrics and JSONL traces.
///
/// Pass an enabled [`obs::Obs`] handle to any `*_obs` task entry point
/// (e.g. [`optimize_obs`]) to record a replayable event stream; the plain
/// entry points run with tracing off at zero cost.
pub mod obs {
    pub use etcs_obs::*;
}

/// Job-scheduling service over the design tasks: bounded priority queue,
/// worker pool with deadlines and cancellation, content-addressed result
/// cache. The `served` binary exposes it over JSONL.
pub mod serve {
    pub use etcs_serve::*;
}

/// Shard-aware distributed serve fleet: a versioned JSONL-over-TCP wire
/// protocol, rendezvous-hashed routing of jobs onto `served --listen`
/// shards with cache replication and crash failover (the `fleetd`
/// binary), and a dbcop-style consistency checker over the shards'
/// recorded cache histories (see `DESIGN.md` §16).
pub mod fleet {
    pub use etcs_fleet::*;
}

/// Seeded, deterministic scenario corpus: parameterized families (grid
/// ladders, convoy chains, branched meshes, station throats, moving-block
/// lines) scaling from fixture sizes to hundreds of trains, versioned
/// manifests, and the solve configurations `bench_corpus` sweeps (see
/// `DESIGN.md` §15).
pub mod corpus {
    pub use etcs_corpus::*;
}

/// Online replanning: streaming scenario deltas (`.delta` traces) with
/// warm-started incremental re-solves — persistent solver state keyed by
/// sub-fingerprints of the unchanged scenario core, per-tick wall-clock
/// budgets with graceful degradation to the last valid plan (see
/// `DESIGN.md` §17).
pub mod replan {
    pub use etcs_replan::*;
}

/// Counterexample-guided lazy constraint solving: CEGAR task loops that
/// defer the pairwise train-interaction constraints and refine from
/// violated instances — same verdicts and optima as the eager tasks, far
/// fewer clauses up front (see `DESIGN.md` §12).
pub mod lazy {
    pub use etcs_lazy::*;
}

/// The most common imports in one place.
pub mod prelude {
    pub use crate::{
        diagnose, diagnose_certified, fixtures, generate, generate_certified, optimize,
        optimize_all, optimize_arrivals, optimize_certified, optimize_incremental,
        optimize_portfolio, verify, verify_all, verify_certified, Certification, CertifiedVerdict,
        DesignOutcome, Diagnosis, EncoderConfig, Instance, LayoutExplorer, NetworkBuilder,
        OptimizeMode, Scenario, Schedule, SolveMode, Train, TrainRun, VerifyOutcome, VssLayout,
    };
    pub use crate::{KmPerHour, Meters, Seconds};
}
