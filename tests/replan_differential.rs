//! The replanning differential contract, end to end: replaying a
//! `.delta` trace through a warm [`ReplanSession`] must produce, at
//! every tick, the **bit-identical verdict and proven optima** of a cold
//! [`optimize_incremental`] solve of the same patched scenario — across
//! the eager warm-core path, the lazy CEGAR path and the portfolio
//! race. The witness plan may differ (stage 2 runs under assumptions on
//! the warm solver); verdict and cost vector may not.

use etcs::corpus::{Family, InstanceSpec, SizeClass};
use etcs::prelude::*;
use etcs::replan::{parse_trace, ReplanConfig, ReplanSession, ScenarioDelta, TraceOp};
use etcs::Seconds;

/// The three session configurations under differential test.
fn modes() -> Vec<(&'static str, ReplanConfig)> {
    vec![
        ("eager", ReplanConfig::default()),
        (
            "lazy",
            ReplanConfig {
                lazy: true,
                ..ReplanConfig::default()
            },
        ),
        (
            "portfolio",
            ReplanConfig {
                encoder: EncoderConfig::default().with_solve_mode(SolveMode::Portfolio(2)),
                ..ReplanConfig::default()
            },
        ),
    ]
}

/// The canonical cold answer for a scenario: verdict + optima from a
/// from-scratch incremental solve under the default configuration.
fn cold_reference(scenario: &Scenario) -> (bool, Vec<u64>) {
    let (outcome, _) =
        optimize_incremental(scenario, &EncoderConfig::default()).expect("well-formed");
    match outcome {
        DesignOutcome::Solved { costs, .. } => (true, costs),
        DesignOutcome::Infeasible => (false, Vec::new()),
    }
}

/// Replays `ops` over `base` under `config`, asserting every tick
/// matches the cold reference of the then-current scenario. Returns the
/// number of warm hits so callers can pin the warm/cold split.
fn assert_replay_matches_cold(
    label: &str,
    base: Scenario,
    ops: &[TraceOp],
    config: ReplanConfig,
) -> u64 {
    let mut session = ReplanSession::new(base, config).expect("base scenario is valid");
    for (i, op) in ops.iter().enumerate() {
        match op {
            TraceOp::Delta(d) => {
                session
                    .apply(d)
                    .unwrap_or_else(|e| panic!("{label}: op {i}: {e}"));
            }
            TraceOp::Tick => {
                let r = session.tick();
                assert!(!r.stale, "{label}: tick {} stale without a budget", r.tick);
                let (feasible, costs) = cold_reference(session.current());
                assert_eq!(
                    (r.feasible, &r.costs),
                    (feasible, &costs),
                    "{label}: tick {} diverged from the cold solve",
                    r.tick
                );
            }
        }
    }
    session.stats().warm_hits
}

fn trace(rel: &str) -> Vec<TraceOp> {
    let path = format!("{}/{rel}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).expect("trace ships with the repo");
    parse_trace(&text).expect("trace parses")
}

#[test]
fn running_example_trace_is_bit_identical_across_modes() {
    let ops = trace("scenarios/replay/running_example.delta");
    for (name, config) in modes() {
        let warm = assert_replay_matches_cold(
            &format!("running_example/{name}"),
            fixtures::running_example(),
            &ops,
            config.clone(),
        );
        if config.lazy {
            assert_eq!(warm, 0, "lazy ticks re-encode, never warm");
        } else {
            // Two deadline ticks plus the close→reopen LRU re-hit.
            assert_eq!(warm, 3, "{name}: exemplar is authored to warm 3 of 8 ticks");
        }
    }
}

#[test]
fn grid_ladder_trace_is_bit_identical_across_modes() {
    let ops = trace("scenarios/replay/corpus_grid_ladder.delta");
    let base = || InstanceSpec::new(Family::GridLadder, SizeClass::Small, 0).build();
    for (name, config) in modes() {
        let warm = assert_replay_matches_cold(
            &format!("grid_ladder/{name}"),
            base(),
            &ops,
            config.clone(),
        );
        if !config.lazy {
            assert_eq!(warm, 3, "{name}: every re-solve after the first is warm");
        }
    }
}

/// Every corpus family at Small: a synthesized deadline-churn trace
/// (the core stays fixed, so every tick after the first is warm) agrees
/// with the cold solve at each step.
#[test]
fn synthesized_deadline_churn_agrees_on_every_corpus_family() {
    for family in Family::ALL {
        let scenario = InstanceSpec::new(family, SizeClass::Small, 0).build();
        let horizon = scenario.horizon;
        let train = scenario.schedule.runs()[0].train.name.clone();
        let ops = vec![
            TraceOp::Tick,
            TraceOp::Delta(ScenarioDelta::Deadline {
                train: train.clone(),
                arrival: Some(horizon),
            }),
            TraceOp::Tick,
            TraceOp::Delta(ScenarioDelta::Deadline {
                train: train.clone(),
                arrival: Some(Seconds(horizon.as_u64() / 2)),
            }),
            TraceOp::Tick,
            TraceOp::Delta(ScenarioDelta::Deadline {
                train,
                arrival: None,
            }),
            TraceOp::Tick,
        ];
        let warm =
            assert_replay_matches_cold(family.name(), scenario, &ops, ReplanConfig::default());
        assert_eq!(
            warm,
            3,
            "{}: deadline churn never leaves the core",
            family.name()
        );
    }
}
