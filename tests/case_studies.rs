//! Integration tests over all four Table I case studies: the paper's
//! qualitative claims must hold on every network.

use etcs::prelude::*;
use etcs::sim;

fn config() -> EncoderConfig {
    EncoderConfig::default()
}

/// The paper's Table I shape, per scenario:
/// verification UNSAT, generation SAT with more sections, optimisation SAT
/// with at most the generation's completion time.
fn assert_table_one_shape(scenario: &Scenario) {
    let inst = Instance::new(scenario).expect("valid scenario");
    let pure = VssLayout::pure_ttd();

    let (v, _) = verify(scenario, &pure, &config()).expect("well-formed");
    assert!(
        !v.is_feasible(),
        "{}: verification on pure TTD must be UNSAT",
        scenario.name
    );

    let (g, _) = generate(scenario, &config()).expect("well-formed");
    let DesignOutcome::Solved {
        plan: gen_plan,
        costs: gen_costs,
    } = g
    else {
        panic!("{}: generation must succeed", scenario.name);
    };
    assert!(gen_costs[0] >= 1, "{}: at least one border", scenario.name);
    assert!(
        gen_plan.section_count(&inst) > pure.section_count(&inst.net),
        "{}: generation adds sections",
        scenario.name
    );
    let report = sim::validate(&inst, &gen_plan, true);
    assert!(report.is_valid(), "{}: {report}", scenario.name);

    let (o, _) = optimize(scenario, &config()).expect("well-formed");
    let DesignOutcome::Solved {
        plan: opt_plan,
        costs: opt_costs,
    } = o
    else {
        panic!("{}: optimisation must succeed", scenario.name);
    };
    let gen_steps = gen_plan.completion_steps(&inst);
    assert!(
        opt_costs[0] as usize <= gen_steps,
        "{}: optimisation ({}) no worse than generation ({gen_steps})",
        scenario.name,
        opt_costs[0]
    );
    let open_inst = Instance::new(&scenario.without_arrivals()).expect("valid");
    let report = sim::validate(&open_inst, &opt_plan, false);
    assert!(report.is_valid(), "{}: {report}", scenario.name);
}

#[test]
fn running_example_has_table_one_shape() {
    assert_table_one_shape(&fixtures::running_example());
}

#[test]
fn simple_layout_has_table_one_shape() {
    assert_table_one_shape(&fixtures::simple_layout());
}

#[test]
fn complex_layout_has_table_one_shape() {
    assert_table_one_shape(&fixtures::complex_layout());
}

#[test]
fn nordlandsbanen_has_table_one_shape() {
    assert_table_one_shape(&fixtures::nordlandsbanen());
}

#[test]
fn full_vss_layouts_subsume_generated_ones() {
    // Any schedule feasible under some layout is feasible under the finest
    // layout (more borders can only help).
    for scenario in [fixtures::running_example(), fixtures::complex_layout()] {
        let inst = Instance::new(&scenario).expect("valid");
        let (v, _) =
            verify(&scenario, &VssLayout::full(&inst.net), &config()).expect("well-formed");
        assert!(
            v.is_feasible(),
            "{}: full VSS must admit the schedule",
            scenario.name
        );
    }
}

#[test]
fn nominal_variable_counts_are_in_the_papers_range() {
    // Table I reports 654 / 3910 / 14025 / 21156 nominal variables; the
    // reconstructed networks land within the same order of magnitude.
    let expectations = [
        ("Running Example", 100, 2_000),
        ("Simple Layout", 1_000, 10_000),
        ("Complex Layout", 3_000, 30_000),
        ("Nordlandsbanen", 10_000, 100_000),
    ];
    for (scenario, (name, lo, hi)) in fixtures::all().iter().zip(expectations) {
        assert_eq!(scenario.name, name);
        let inst = Instance::new(scenario).expect("valid");
        let vars = inst.nominal_var_count();
        assert!(
            (lo..hi).contains(&vars),
            "{name}: nominal variable count {vars} outside [{lo}, {hi})"
        );
    }
}

#[test]
fn optimisation_ignores_arrival_deadlines() {
    // optimize() must not be constrained by the schedule's arrivals: its
    // result equals running it on the deadline-free scenario.
    let scenario = fixtures::running_example();
    let (a, _) = optimize(&scenario, &config()).expect("well-formed");
    let (b, _) = optimize(&scenario.without_arrivals(), &config()).expect("well-formed");
    let (DesignOutcome::Solved { costs: ca, .. }, DesignOutcome::Solved { costs: cb, .. }) = (a, b)
    else {
        panic!("both must solve");
    };
    assert_eq!(ca, cb);
}

#[test]
fn verification_accepts_the_optimised_layout_with_relaxed_deadlines() {
    // Pin the optimised layout, relax every deadline to the horizon: the
    // verification task must accept.
    let scenario = fixtures::running_example();
    let (o, _) = optimize(&scenario, &config()).expect("well-formed");
    let layout = o.plan().expect("solved").layout.clone();
    let mut relaxed = scenario.clone();
    relaxed.schedule = Schedule::new(
        scenario
            .schedule
            .runs()
            .iter()
            .map(|r| TrainRun {
                arrival: Some(relaxed.horizon),
                ..r.clone()
            })
            .collect(),
    );
    let (v, _) = verify(&relaxed, &layout, &config()).expect("well-formed");
    assert!(v.is_feasible());
}
