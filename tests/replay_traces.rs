//! The shipped `.delta` replay exemplars under `scenarios/replay/`:
//! every trace must parse, round-trip through `write_trace`, and apply
//! cleanly to the base scenario its header names; corrupting a real
//! trace must fail with a line + column pointer at the corruption (the
//! same error-reporting contract `rail_format.rs` pins for `.rail`
//! documents).

use etcs::corpus::{Family, InstanceSpec, SizeClass};
use etcs::prelude::*;
use etcs::replan::{parse_trace, write_trace, ReplanConfig, ReplanSession, TraceOp};

fn replay_files() -> Vec<(std::path::PathBuf, String)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/replay");
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .expect("scenarios/replay/ ships with the repo")
        .filter_map(|entry| {
            let path = entry.expect("readable directory entry").path();
            (path.extension().is_some_and(|e| e == "delta")).then_some(path)
        })
        .map(|path| {
            let text = std::fs::read_to_string(&path).expect("trace is readable");
            (path, text)
        })
        .collect();
    files.sort();
    assert!(
        files.len() >= 2,
        "expected the shipped replay exemplars, found {files:?}"
    );
    files
}

fn running_example_trace() -> String {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/scenarios/replay/running_example.delta"
    );
    std::fs::read_to_string(path).expect("exemplar ships with the repo")
}

/// The base scenario a trace file was authored against, by file stem.
fn base_scenario(path: &std::path::Path) -> Scenario {
    match path.file_stem().and_then(|s| s.to_str()) {
        Some("running_example") => fixtures::running_example(),
        Some("corpus_grid_ladder") => {
            InstanceSpec::new(Family::GridLadder, SizeClass::Small, 0).build()
        }
        other => panic!("no base scenario registered for trace {other:?}"),
    }
}

#[test]
fn every_shipped_trace_parses_and_roundtrips() {
    for (path, text) in replay_files() {
        let ops = parse_trace(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let ticks = ops.iter().filter(|op| matches!(op, TraceOp::Tick)).count();
        let deltas = ops.len() - ticks;
        assert!(
            ticks >= 3 && deltas >= 3,
            "{}: trivial trace ({ticks} ticks, {deltas} deltas)",
            path.display()
        );
        let written = write_trace(&ops);
        let back =
            parse_trace(&written).unwrap_or_else(|e| panic!("{}: round-trip: {e}", path.display()));
        assert_eq!(back, ops, "{}: round-trip changed the ops", path.display());
        // `write_trace` is canonical: writing what it wrote is a fixpoint.
        assert_eq!(written, write_trace(&back), "{}", path.display());
    }
}

#[test]
fn every_shipped_trace_applies_cleanly_to_its_base_scenario() {
    for (path, text) in replay_files() {
        let ops = parse_trace(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        // Applying deltas is cheap (no solving); every delta in a shipped
        // exemplar must name real trains/tracks and apply transactionally.
        let mut session = ReplanSession::new(base_scenario(&path), ReplanConfig::default())
            .expect("base scenario is valid");
        for op in &ops {
            if let TraceOp::Delta(d) = op {
                session
                    .apply(d)
                    .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            }
        }
        assert_eq!(session.stats().rejected_deltas, 0, "{}", path.display());
    }
}

#[test]
fn running_example_trace_exercises_the_full_vocabulary() {
    let ops = parse_trace(&running_example_trace()).expect("exemplar parses");
    let kinds: std::collections::BTreeSet<&str> = ops
        .iter()
        .filter_map(|op| match op {
            TraceOp::Delta(d) => Some(d.kind()),
            TraceOp::Tick => None,
        })
        .collect();
    assert_eq!(
        kinds.into_iter().collect::<Vec<_>>(),
        ["add", "close", "deadline", "delay", "remove", "reopen"],
        "the exemplar is the vocabulary showcase — keep every delta kind"
    );
}

/// 1-based (line, column) of `needle` in `text`, for pinning parse
/// errors against the corruption we injected.
fn position_of(text: &str, needle: &str) -> (usize, usize) {
    for (i, line) in text.lines().enumerate() {
        if let Some(col) = line.find(needle) {
            return (i + 1, col + 1);
        }
    }
    panic!("{needle:?} not found");
}

#[test]
fn corrupting_a_duration_points_at_the_fragment() {
    let text = running_example_trace().replace("delay Train 3 : 0:00:30", "delay Train 3 : soon");
    let e = parse_trace(&text).expect_err("corrupted duration fails");
    let (line, column) = position_of(&text, "soon");
    assert_eq!((e.line, e.column), (line, column), "{e}");
    assert!(e.message.contains("invalid delay duration"), "{e}");
    assert!(
        format!("{e}").contains(&format!("line {line}, column {column}")),
        "{e}"
    );
}

#[test]
fn corrupting_a_deadline_points_at_the_fragment() {
    let text = running_example_trace().replace("arr 0:04:00", "arr whenever");
    let e = parse_trace(&text).expect_err("corrupted deadline fails");
    assert_eq!((e.line, e.column), position_of(&text, "whenever"), "{e}");
    assert!(e.message.contains("invalid deadline"), "{e}");
}

#[test]
fn corrupting_an_add_length_points_at_the_fragment() {
    let text = running_example_trace().replace(": 250 180 B", ": heavy 180 B");
    let e = parse_trace(&text).expect_err("corrupted length fails");
    assert_eq!((e.line, e.column), position_of(&text, "heavy"), "{e}");
    assert!(e.message.contains("invalid train length"), "{e}");
}

#[test]
fn appending_garbage_reports_the_new_line() {
    let base = running_example_trace();
    let lines = base.lines().count();

    // An unknown directive blames its own keyword...
    let text = format!("{base}cancel Train 9 : 0:01:00\n");
    let e = parse_trace(&text).expect_err("unknown keyword fails");
    assert_eq!((e.line, e.column), (lines + 1, 1), "{e}");
    assert!(e.message.contains("cancel"), "{e}");

    // ... and a tick with arguments blames the arguments.
    let text = format!("{base}tick twice\n");
    let e = parse_trace(&text).expect_err("tick with arguments fails");
    assert_eq!((e.line, e.column), (lines + 1, 6), "{e}");
    assert!(e.message.contains("no arguments"), "{e}");
}
