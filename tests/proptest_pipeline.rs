//! End-to-end property test: for randomly generated line scenarios, every
//! plan the SAT pipeline produces must pass the independent operational
//! validator, and the task answers must be mutually consistent.
//!
//! This is the strongest correctness argument in the workspace: the
//! encoder (`etcs-core`) and the validator (`etcs-sim`) implement the
//! paper's rules independently, so an encoding bug would surface as a
//! validation failure on some random topology.

use etcs::corpus::{Family, InstanceSpec, SizeClass};
use etcs::network::generator::{branched_line, single_track_line, BranchConfig, LineConfig};
use etcs::prelude::*;
use etcs::sim;
use etcs::{parse_scenario, write_scenario};
use etcs_testkit::{cases, Rng};

fn small_line(rng: &mut Rng) -> Scenario {
    single_track_line(&LineConfig {
        stations: rng.range(2, 5),
        loop_every: rng.below(3),
        link_m: 1000,
        trains_per_direction: rng.range(1, 3),
        headway: Seconds::from_minutes(2),
        r_s: Meters(500),
        r_t: Seconds(30),
        horizon: Seconds::from_minutes(10),
        seed: rng.next_u64(),
        ..LineConfig::default()
    })
}

fn small_branch(rng: &mut Rng) -> Scenario {
    branched_line(&BranchConfig {
        arm_stations: rng.below(2),
        trunk_stations: rng.below(2),
        link_m: 1000,
        trains_per_arm: rng.range(1, 3),
        headway: Seconds::from_minutes(2),
        r_s: Meters(500),
        r_t: Seconds(30),
        horizon: Seconds::from_minutes(10),
        seed: rng.next_u64(),
        ..BranchConfig::default()
    })
}

/// Mixes linear and branching topologies, so the encoder/validator
/// differential tests below also exercise junction merges (degree-3 nodes,
/// shared-trunk contention) — not just chains.
fn small_topology(rng: &mut Rng) -> Scenario {
    if rng.bool() {
        small_line(rng)
    } else {
        small_branch(rng)
    }
}

/// Draws a random Small corpus instance: any family, fresh seed. The
/// corpus families are richer than the local line/branch generators above
/// (grids with crossover rungs, station throats, moving-block convoys),
/// so the encoder/validator differentials below see junction shapes the
/// original topologies never produce.
fn corpus_instance(rng: &mut Rng) -> Scenario {
    let family = Family::ALL[rng.below(Family::ALL.len())];
    InstanceSpec::new(family, SizeClass::Small, rng.next_u64()).build()
}

// Each case runs a full SAT pipeline; keep the counts moderate.

#[test]
fn generated_plans_pass_independent_validation() {
    cases(24, |rng| {
        let scenario = small_topology(rng);
        let config = EncoderConfig::default();
        let inst = Instance::new(&scenario).expect("generated scenarios are valid");
        let (outcome, _) = generate(&scenario, &config).expect("well-formed");
        if let Some(plan) = outcome.plan() {
            let report = sim::validate(&inst, plan, true);
            assert!(report.is_valid(), "{}:\n{report}", scenario.name);
        }
    });
}

#[test]
fn optimized_plans_pass_independent_validation() {
    cases(24, |rng| {
        let scenario = small_topology(rng);
        let config = EncoderConfig::default();
        let open = scenario.without_arrivals();
        let inst = Instance::new(&open).expect("valid");
        let (outcome, _) = optimize(&scenario, &config).expect("well-formed");
        if let Some(plan) = outcome.plan() {
            let report = sim::validate(&inst, plan, false);
            assert!(report.is_valid(), "{}:\n{report}", scenario.name);
        }
    });
}

#[test]
fn generation_monotone_in_layout() {
    cases(24, |rng| {
        let scenario = small_topology(rng);
        // If generation succeeds, the generated layout verifies, and so
        // does the finest layout.
        let config = EncoderConfig::default();
        let inst = Instance::new(&scenario).expect("valid");
        let (outcome, _) = generate(&scenario, &config).expect("well-formed");
        if let Some(plan) = outcome.plan() {
            let (check, _) = verify(&scenario, &plan.layout, &config).expect("well-formed");
            assert!(check.is_feasible(), "generated layout must verify");
            let (full, _) =
                verify(&scenario, &VssLayout::full(&inst.net), &config).expect("well-formed");
            assert!(full.is_feasible(), "finest layout must also verify");
        }
    });
}

#[test]
fn pruning_does_not_change_answers() {
    cases(24, |rng| {
        let scenario = small_topology(rng);
        let pruned = EncoderConfig::default();
        let unpruned = EncoderConfig {
            prune_to_goal: false,
            ..pruned
        };
        let (a, _) = verify(&scenario, &VssLayout::pure_ttd(), &pruned).expect("well-formed");
        let (b, _) = verify(&scenario, &VssLayout::pure_ttd(), &unpruned).expect("well-formed");
        assert_eq!(a.is_feasible(), b.is_feasible(), "pruning must be sound");
    });
}

#[test]
fn corpus_generated_plans_pass_independent_validation() {
    cases(15, |rng| {
        let scenario = corpus_instance(rng);
        let config = EncoderConfig::default();
        let inst = Instance::new(&scenario).expect("corpus scenarios are valid");
        let (outcome, _) = generate(&scenario, &config).expect("well-formed");
        if let Some(plan) = outcome.plan() {
            let report = sim::validate(&inst, plan, true);
            assert!(report.is_valid(), "{}:\n{report}", scenario.name);
        }
    });
}

#[test]
fn corpus_rail_roundtrip_preserves_answers() {
    // The `.rail` round-trip must be semantics-preserving, not just
    // structurally lossless: the reparsed scenario yields the same
    // generation verdict and the same minimal border count.
    cases(10, |rng| {
        let scenario = corpus_instance(rng);
        let config = EncoderConfig::default();
        let back = parse_scenario(&write_scenario(&scenario))
            .unwrap_or_else(|e| panic!("{}: roundtrip: {e}", scenario.name));
        let (a, _) = generate(&scenario, &config).expect("well-formed");
        let (b, _) = generate(&back, &config).expect("well-formed");
        let costs = |o: &DesignOutcome| match o {
            DesignOutcome::Solved { costs, .. } => Some(costs.clone()),
            DesignOutcome::Infeasible => None,
        };
        assert_eq!(costs(&a), costs(&b), "{}", scenario.name);
    });
}

#[test]
fn optimization_cost_matches_decoded_completion() {
    cases(24, |rng| {
        let scenario = small_topology(rng);
        let config = EncoderConfig::default();
        let open = scenario.without_arrivals();
        let inst = Instance::new(&open).expect("valid");
        let (outcome, _) = optimize(&scenario, &config).expect("well-formed");
        if let DesignOutcome::Solved { plan, costs } = outcome {
            assert_eq!(costs[0] as usize, plan.completion_steps(&inst));
        }
    });
}
