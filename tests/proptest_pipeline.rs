//! End-to-end property test: for randomly generated line scenarios, every
//! plan the SAT pipeline produces must pass the independent operational
//! validator, and the task answers must be mutually consistent.
//!
//! This is the strongest correctness argument in the workspace: the
//! encoder (`etcs-core`) and the validator (`etcs-sim`) implement the
//! paper's rules independently, so an encoding bug would surface as a
//! validation failure on some random topology.

use etcs::network::generator::{single_track_line, LineConfig};
use etcs::prelude::*;
use etcs::sim;
use proptest::prelude::*;

fn small_line() -> impl Strategy<Value = Scenario> {
    (
        2usize..5,    // stations
        0usize..3,    // loop_every
        1usize..3,    // trains per direction
        any::<u64>(), // seed
    )
        .prop_map(|(stations, loop_every, trains, seed)| {
            single_track_line(&LineConfig {
                stations,
                loop_every,
                link_m: 1000,
                trains_per_direction: trains,
                headway: Seconds::from_minutes(2),
                r_s: Meters(500),
                r_t: Seconds(30),
                horizon: Seconds::from_minutes(10),
                seed,
                ..LineConfig::default()
            })
        })
}

proptest! {
    // Each case runs a full SAT pipeline; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_plans_pass_independent_validation(scenario in small_line()) {
        let config = EncoderConfig::default();
        let inst = Instance::new(&scenario).expect("generated scenarios are valid");
        let (outcome, _) = generate(&scenario, &config).expect("well-formed");
        if let Some(plan) = outcome.plan() {
            let report = sim::validate(&inst, plan, true);
            prop_assert!(report.is_valid(), "{}:\n{report}", scenario.name);
        }
    }

    #[test]
    fn optimized_plans_pass_independent_validation(scenario in small_line()) {
        let config = EncoderConfig::default();
        let open = scenario.without_arrivals();
        let inst = Instance::new(&open).expect("valid");
        let (outcome, _) = optimize(&scenario, &config).expect("well-formed");
        if let Some(plan) = outcome.plan() {
            let report = sim::validate(&inst, plan, false);
            prop_assert!(report.is_valid(), "{}:\n{report}", scenario.name);
        }
    }

    #[test]
    fn generation_monotone_in_layout(scenario in small_line()) {
        // If generation succeeds, the generated layout verifies, and so
        // does the finest layout.
        let config = EncoderConfig::default();
        let inst = Instance::new(&scenario).expect("valid");
        let (outcome, _) = generate(&scenario, &config).expect("well-formed");
        if let Some(plan) = outcome.plan() {
            let (check, _) = verify(&scenario, &plan.layout, &config).expect("well-formed");
            prop_assert!(check.is_feasible(), "generated layout must verify");
            let (full, _) =
                verify(&scenario, &VssLayout::full(&inst.net), &config).expect("well-formed");
            prop_assert!(full.is_feasible(), "finest layout must also verify");
        }
    }

    #[test]
    fn pruning_does_not_change_answers(scenario in small_line()) {
        let pruned = EncoderConfig::default();
        let unpruned = EncoderConfig { prune_to_goal: false, ..pruned };
        let (a, _) = verify(&scenario, &VssLayout::pure_ttd(), &pruned).expect("well-formed");
        let (b, _) = verify(&scenario, &VssLayout::pure_ttd(), &unpruned).expect("well-formed");
        prop_assert_eq!(a.is_feasible(), b.is_feasible(), "pruning must be sound");
    }

    #[test]
    fn optimization_cost_matches_decoded_completion(scenario in small_line()) {
        let config = EncoderConfig::default();
        let open = scenario.without_arrivals();
        let inst = Instance::new(&open).expect("valid");
        let (outcome, _) = optimize(&scenario, &config).expect("well-formed");
        if let DesignOutcome::Solved { plan, costs } = outcome {
            prop_assert_eq!(costs[0] as usize, plan.completion_steps(&inst));
        }
    }
}
