//! Differential tests for the lazy (CEGAR) task loops: on random testkit
//! topologies and on the interaction-dense fixtures, `verify_lazy` must
//! return **bit-identical** verdicts and `optimize_lazy` **bit-identical**
//! optima `(deadline, borders)` to the eager loops — under every
//! Engels–Wille selection strategy. The lazy loops differ from the eager
//! ones in *what* they encode (a relaxation refined on demand), so any
//! soundness gap in the refiner — a blocking clause not implied by the
//! full formula, a violation the detector misses — surfaces here as a
//! verdict or cost divergence.

use etcs::lazy::{optimize_lazy, verify_lazy, LazyConfig, SelectionStrategy};
use etcs::network::generator::{branched_line, single_track_line, BranchConfig, LineConfig};
use etcs::prelude::*;
use etcs_testkit::{cases, Rng};

fn config() -> EncoderConfig {
    EncoderConfig::default()
}

fn small_line(rng: &mut Rng) -> Scenario {
    single_track_line(&LineConfig {
        stations: rng.range(2, 5),
        loop_every: rng.below(3),
        link_m: 1000,
        trains_per_direction: rng.range(1, 3),
        headway: Seconds::from_minutes(2),
        r_s: Meters(500),
        r_t: Seconds(30),
        horizon: Seconds::from_minutes(10),
        seed: rng.next_u64(),
        ..LineConfig::default()
    })
}

fn small_branch(rng: &mut Rng) -> Scenario {
    branched_line(&BranchConfig {
        arm_stations: rng.below(2),
        trunk_stations: rng.below(2),
        link_m: 1000,
        trains_per_arm: rng.range(1, 3),
        headway: Seconds::from_minutes(2),
        r_s: Meters(500),
        r_t: Seconds(30),
        horizon: Seconds::from_minutes(10),
        seed: rng.next_u64(),
        ..BranchConfig::default()
    })
}

fn small_topology(rng: &mut Rng) -> Scenario {
    if rng.bool() {
        small_line(rng)
    } else {
        small_branch(rng)
    }
}

/// The optimal `(deadline_steps, borders)` pair, or `None` when infeasible.
fn optimum(outcome: &DesignOutcome) -> Option<(u64, u64)> {
    match outcome {
        DesignOutcome::Solved { costs, .. } => Some((costs[0], costs[1])),
        DesignOutcome::Infeasible => None,
    }
}

/// Verifies `scenario` on `layout` both eagerly and lazily under every
/// strategy, asserting bit-identical verdicts.
fn assert_verify_agrees(scenario: &Scenario, layout: &VssLayout) {
    let (eager, _) = verify(scenario, layout, &config()).expect("well-formed");
    for strategy in SelectionStrategy::ALL {
        let lazy = LazyConfig::with_strategy(strategy);
        let (relaxed, _) = verify_lazy(scenario, layout, &config(), &lazy).expect("well-formed");
        assert_eq!(
            eager.is_feasible(),
            relaxed.is_feasible(),
            "{}: verify_lazy({}) diverged from verify",
            scenario.name,
            strategy.name()
        );
    }
}

/// Optimises `scenario` both eagerly and lazily under every strategy,
/// asserting bit-identical `(deadline, borders)` optima.
fn assert_optimize_agrees(scenario: &Scenario) {
    let (eager, _) = optimize_incremental(scenario, &config()).expect("well-formed");
    for strategy in SelectionStrategy::ALL {
        let lazy = LazyConfig::with_strategy(strategy);
        let (relaxed, _) = optimize_lazy(scenario, &config(), &lazy).expect("well-formed");
        assert_eq!(
            optimum(&eager),
            optimum(&relaxed),
            "{}: optimize_lazy({}) diverged from optimize_incremental",
            scenario.name,
            strategy.name()
        );
    }
}

#[test]
fn lazy_verification_matches_eager_on_random_topologies() {
    cases(12, |rng| {
        let scenario = small_topology(rng);
        let inst = Instance::new(&scenario).expect("generated scenarios are valid");
        // Full layout: the relaxed SAT path (violations to refine away).
        assert_verify_agrees(&scenario, &VssLayout::full(&inst.net));
        // Pure TTD: often infeasible — the relaxation-UNSAT transfer path.
        assert_verify_agrees(&scenario, &VssLayout::pure_ttd());
    });
}

#[test]
fn lazy_optimisation_matches_eager_on_random_topologies() {
    cases(12, |rng| {
        let scenario = small_topology(rng);
        assert_optimize_agrees(&scenario);
    });
}

#[test]
fn lazy_optimisation_matches_eager_on_convoy() {
    // The interaction-dense regime: four trains chasing down one line, the
    // worst case for a lazy loop (nearly every family activates).
    assert_optimize_agrees(&etcs::network::fixtures::convoy());
}

#[test]
fn lazy_optimisation_matches_eager_on_branched_line() {
    // The shared-trunk merge regime the lazy loop is built for.
    let scenario = branched_line(&BranchConfig {
        arm_stations: 1,
        trunk_stations: 2,
        trains_per_arm: 2,
        ..BranchConfig::default()
    });
    assert_optimize_agrees(&scenario);
}
