//! Integration tests for the shipped `.rail` sample scenarios: every file
//! in `scenarios/` must parse, validate and round-trip; the branch-line
//! sample additionally runs the full design pipeline.

use etcs::prelude::*;
use etcs::{parse_scenario, write_scenario};

fn scenario_files() -> Vec<std::path::PathBuf> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios");
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .expect("scenarios/ ships with the repo")
        .filter_map(|entry| {
            let path = entry.expect("readable directory entry").path();
            (path.extension().is_some_and(|e| e == "rail")).then_some(path)
        })
        .collect();
    files.sort();
    assert!(
        files.len() >= 3,
        "expected the shipped sample scenarios, found {files:?}"
    );
    files
}

fn load(path: &std::path::Path) -> Scenario {
    let text = std::fs::read_to_string(path).expect("sample scenario is readable");
    parse_scenario(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn load_sample() -> Scenario {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/branch_line.rail");
    let text = std::fs::read_to_string(path).expect("sample scenario ships with the repo");
    parse_scenario(&text).expect("sample scenario parses")
}

#[test]
fn every_shipped_scenario_parses_validates_and_roundtrips() {
    for path in scenario_files() {
        let s = load(&path);
        s.validate()
            .unwrap_or_else(|e| panic!("{}: invalid: {e}", path.display()));
        assert!(
            s.schedule.len() >= 2,
            "{}: trivial schedule",
            path.display()
        );
        let back = parse_scenario(&write_scenario(&s))
            .unwrap_or_else(|e| panic!("{}: roundtrip: {e}", path.display()));
        assert_eq!(back.network, s.network, "{}", path.display());
        assert_eq!(back.schedule, s.schedule, "{}", path.display());
        assert_eq!(
            (back.name, back.r_s, back.r_t, back.horizon),
            (s.name, s.r_s, s.r_t, s.horizon),
            "{}",
            path.display()
        );
    }
}

#[test]
fn sample_scenario_parses_and_validates() {
    let s = load_sample();
    assert_eq!(s.name, "Branch line");
    assert_eq!(s.network.stations().len(), 2);
    assert_eq!(s.network.ttds().len(), 4);
    assert_eq!(s.schedule.len(), 2);
    s.validate().expect("valid");
}

#[test]
fn sample_scenario_roundtrips() {
    let s = load_sample();
    let text = write_scenario(&s);
    let back = parse_scenario(&text).expect("roundtrip parses");
    assert_eq!(back.network, s.network);
    assert_eq!(back.schedule, s.schedule);
}

#[test]
fn sample_scenario_runs_the_design_pipeline() {
    let s = load_sample();
    let config = EncoderConfig::default();
    let inst = Instance::new(&s).expect("valid");

    // Both intercity trains wait on the single Westhaven station track, so
    // pure TTD operation deadlocks before either can depart — the paper's
    // core motivation in miniature. The certified path proves it: the
    // verdict ships with a DRAT proof the in-repo checker replays.
    let (v, _, cert) =
        etcs::verify_certified(&s, &VssLayout::pure_ttd(), &config).expect("well-formed");
    assert!(!v.is_feasible());
    assert!(matches!(
        cert.verdict,
        etcs::CertifiedVerdict::ProofChecked(_)
    ));
    assert_eq!(
        diagnose(&s, &VssLayout::pure_ttd(), &config).expect("well-formed"),
        Diagnosis::Structural
    );

    // Virtual subsections repair the deadlock.
    let (g, _) = generate(&s, &config).expect("well-formed");
    let plan = g.plan().expect("feasible with VSS");
    assert!(etcs::sim::validate(&inst, plan, true).is_valid());

    // Optimisation still finds the earliest completion.
    let (o, _) = optimize(&s, &config).expect("well-formed");
    let DesignOutcome::Solved { costs, .. } = o else {
        panic!("optimisation succeeds");
    };
    assert!(costs[0] as usize <= s.t_max());
}
