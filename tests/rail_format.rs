//! Integration tests for the shipped `.rail` sample scenarios: every file
//! in `scenarios/` (including the corpus exemplars under
//! `scenarios/corpus/`) must parse, validate and round-trip; the
//! branch-line sample additionally runs the full design pipeline; the
//! checked-in corpus exemplars are pinned byte-for-byte against their
//! generating specs; and corrupted corpus documents must fail with
//! line/column spans pointing at the corruption.

use etcs::corpus::{exemplar_path, exemplar_rail, exemplars, sample_specs, Family, SizeClass};
use etcs::prelude::*;
use etcs::{parse_scenario, write_scenario};

fn scenario_files() -> Vec<std::path::PathBuf> {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios");
    let mut files: Vec<std::path::PathBuf> = Vec::new();
    for dir in [root.to_owned(), format!("{root}/corpus")] {
        files.extend(
            std::fs::read_dir(dir)
                .expect("scenarios/ and scenarios/corpus/ ship with the repo")
                .filter_map(|entry| {
                    let path = entry.expect("readable directory entry").path();
                    (path.extension().is_some_and(|e| e == "rail")).then_some(path)
                }),
        );
    }
    files.sort();
    assert!(
        files.len() >= 9,
        "expected the shipped sample scenarios plus the corpus exemplars, found {files:?}"
    );
    files
}

fn load(path: &std::path::Path) -> Scenario {
    let text = std::fs::read_to_string(path).expect("sample scenario is readable");
    parse_scenario(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn load_sample() -> Scenario {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/branch_line.rail");
    let text = std::fs::read_to_string(path).expect("sample scenario ships with the repo");
    parse_scenario(&text).expect("sample scenario parses")
}

#[test]
fn every_shipped_scenario_parses_validates_and_roundtrips() {
    for path in scenario_files() {
        let s = load(&path);
        s.validate()
            .unwrap_or_else(|e| panic!("{}: invalid: {e}", path.display()));
        assert!(
            s.schedule.len() >= 2,
            "{}: trivial schedule",
            path.display()
        );
        let back = parse_scenario(&write_scenario(&s))
            .unwrap_or_else(|e| panic!("{}: roundtrip: {e}", path.display()));
        assert_eq!(back.network, s.network, "{}", path.display());
        assert_eq!(back.schedule, s.schedule, "{}", path.display());
        assert_eq!(
            (back.name, back.r_s, back.r_t, back.horizon),
            (s.name, s.r_s, s.r_t, s.horizon),
            "{}",
            path.display()
        );
    }
}

#[test]
fn sample_scenario_parses_and_validates() {
    let s = load_sample();
    assert_eq!(s.name, "Branch line");
    assert_eq!(s.network.stations().len(), 2);
    assert_eq!(s.network.ttds().len(), 4);
    assert_eq!(s.schedule.len(), 2);
    s.validate().expect("valid");
}

#[test]
fn sample_scenario_roundtrips() {
    let s = load_sample();
    let text = write_scenario(&s);
    let back = parse_scenario(&text).expect("roundtrip parses");
    assert_eq!(back.network, s.network);
    assert_eq!(back.schedule, s.schedule);
}

/// The determinism contract made visible in the repository: every
/// checked-in corpus exemplar must be byte-identical to what its spec
/// generates today. Regenerate with `bench_corpus --emit-exemplars` after
/// bumping the corpus format version.
#[test]
fn corpus_exemplars_match_their_specs_byte_for_byte() {
    let root = env!("CARGO_MANIFEST_DIR");
    for spec in exemplars() {
        let rel = exemplar_path(&spec);
        let on_disk = std::fs::read_to_string(format!("{root}/{rel}"))
            .unwrap_or_else(|e| panic!("{rel}: exemplar ships with the repo: {e}"));
        assert_eq!(
            on_disk,
            exemplar_rail(&spec),
            "{rel}: checked-in exemplar diverged from its spec — \
             rerun `bench_corpus --emit-exemplars` (and bump the corpus \
             format version if the generators changed)"
        );
    }
}

/// Every corpus family round-trips through the `.rail` format at Small
/// and Medium: write → parse → identical network, schedule and metadata.
#[test]
fn corpus_instances_roundtrip_through_rail() {
    for family in Family::ALL {
        for size in [SizeClass::Small, SizeClass::Medium] {
            for spec in sample_specs(family, size, 3, 0x5EED) {
                let s = spec.build();
                let back = parse_scenario(&write_scenario(&s))
                    .unwrap_or_else(|e| panic!("{}: roundtrip: {e}", spec.canonical_name()));
                assert_eq!(back.network, s.network, "{}", spec.canonical_name());
                assert_eq!(back.schedule, s.schedule, "{}", spec.canonical_name());
                assert_eq!(
                    (back.name, back.r_s, back.r_t, back.horizon),
                    (s.name, s.r_s, s.r_t, s.horizon),
                    "{}",
                    spec.canonical_name()
                );
            }
        }
    }
}

/// Corrupting a real corpus document must fail with a line/column span
/// pointing at the corruption — the loader's error-reporting contract,
/// exercised on generated (not hand-written) inputs.
#[test]
fn corrupted_corpus_documents_report_line_and_column() {
    let text = exemplar_rail(&exemplars()[0]);
    let lines: Vec<&str> = text.lines().collect();

    // 1. Corrupt a track length into a non-number.
    let track_ix = lines
        .iter()
        .position(|l| l.starts_with("track "))
        .expect("exemplar has tracks");
    let bad_len = lines[track_ix]
        .rsplit_once(' ')
        .map(|(head, _)| format!("{head} banana"))
        .expect("track line has fields");
    let mut doc: Vec<String> = lines.iter().map(|&l| l.to_owned()).collect();
    doc[track_ix] = bad_len;
    let e = parse_scenario(&doc.join("\n")).expect_err("corrupted length fails");
    assert_eq!(e.line, track_ix + 1);
    assert_eq!(
        e.column,
        doc[track_ix].len() - "banana".len() + 1,
        "column points at the corrupted length: {e}"
    );
    assert!(e.message.contains("banana"), "{e}");

    // 2. Reference an undefined node.
    let mut doc: Vec<String> = lines.iter().map(|&l| l.to_owned()).collect();
    doc[track_ix] = doc[track_ix].replacen("n0", "ghost", 1);
    let e = parse_scenario(&doc.join("\n")).expect_err("unknown node fails");
    assert_eq!(e.line, track_ix + 1);
    assert_eq!(
        e.column as usize,
        doc[track_ix].find("ghost").expect("ghost is in the line") + 1,
        "column points at the unknown node: {e}"
    );
    assert!(e.message.contains("ghost"), "{e}");

    // 3. An unknown directive reports the keyword's own span.
    let doc = format!("{}\nwarp Speed : 9\n", text.trim_end());
    let e = parse_scenario(&doc).expect_err("unknown keyword fails");
    assert_eq!((e.line, e.column), (lines.len() + 1, 1), "{e}");
    assert!(e.message.contains("warp"), "{e}");

    // 4. Truncating the document to half its lines still yields a
    //    structured error (whole-document diagnostics carry line 0), not
    //    a panic.
    let half = lines[..lines.len() / 2].join("\n");
    let e = parse_scenario(&half).expect_err("truncated document fails");
    assert!(
        e.line == 0 || e.line <= lines.len() / 2,
        "diagnostic stays within the truncated document: {e}"
    );
}

#[test]
fn sample_scenario_runs_the_design_pipeline() {
    let s = load_sample();
    let config = EncoderConfig::default();
    let inst = Instance::new(&s).expect("valid");

    // Both intercity trains wait on the single Westhaven station track, so
    // pure TTD operation deadlocks before either can depart — the paper's
    // core motivation in miniature. The certified path proves it: the
    // verdict ships with a DRAT proof the in-repo checker replays.
    let (v, _, cert) =
        etcs::verify_certified(&s, &VssLayout::pure_ttd(), &config).expect("well-formed");
    assert!(!v.is_feasible());
    assert!(matches!(
        cert.verdict,
        etcs::CertifiedVerdict::ProofChecked(_)
    ));
    assert_eq!(
        diagnose(&s, &VssLayout::pure_ttd(), &config).expect("well-formed"),
        Diagnosis::Structural
    );

    // Virtual subsections repair the deadlock.
    let (g, _) = generate(&s, &config).expect("well-formed");
    let plan = g.plan().expect("feasible with VSS");
    assert!(etcs::sim::validate(&inst, plan, true).is_valid());

    // Optimisation still finds the earliest completion.
    let (o, _) = optimize(&s, &config).expect("well-formed");
    let DesignOutcome::Solved { costs, .. } = o else {
        panic!("optimisation succeeds");
    };
    assert!(costs[0] as usize <= s.t_max());
}
