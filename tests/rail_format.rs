//! Integration test for the shipped `.rail` sample scenario: parse it from
//! disk and run the full design pipeline on it.

use etcs::prelude::*;
use etcs::{parse_scenario, write_scenario};

fn load_sample() -> Scenario {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/branch_line.rail");
    let text = std::fs::read_to_string(path).expect("sample scenario ships with the repo");
    parse_scenario(&text).expect("sample scenario parses")
}

#[test]
fn sample_scenario_parses_and_validates() {
    let s = load_sample();
    assert_eq!(s.name, "Branch line");
    assert_eq!(s.network.stations().len(), 2);
    assert_eq!(s.network.ttds().len(), 4);
    assert_eq!(s.schedule.len(), 2);
    s.validate().expect("valid");
}

#[test]
fn sample_scenario_roundtrips() {
    let s = load_sample();
    let text = write_scenario(&s);
    let back = parse_scenario(&text).expect("roundtrip parses");
    assert_eq!(back.network, s.network);
    assert_eq!(back.schedule, s.schedule);
}

#[test]
fn sample_scenario_runs_the_design_pipeline() {
    let s = load_sample();
    let config = EncoderConfig::default();
    let inst = Instance::new(&s).expect("valid");

    // Both intercity trains terminate at the two-track Midford loop, one
    // minute apart — that works even on pure TTDs (each takes one track).
    let (v, _) = verify(&s, &VssLayout::pure_ttd(), &config).expect("well-formed");
    assert!(v.is_feasible());
    let plan = v.plan().expect("feasible");
    assert!(etcs::sim::validate(&inst, plan, true).is_valid());

    // Optimisation still finds the earliest completion.
    let (o, _) = optimize(&s, &config).expect("well-formed");
    let DesignOutcome::Solved { costs, .. } = o else {
        panic!("optimisation succeeds");
    };
    assert!(costs[0] as usize <= s.t_max());
}
