//! Differential tests for `SolveMode::Portfolio`: a clause-sharing race
//! must change *how fast* an answer arrives, never *which* answer. On all
//! shipped fixtures and at every thread count in {1, 2, 4} the portfolio
//! verdicts must be identical to the single-threaded solves, every SAT
//! model must be re-checked by the eager validator (`etcs::sim`), and the
//! `optimize` optima must be bit-identical. Any unsoundness in the share
//! pool — an imported clause not implied by the formula, a lost sibling
//! cancellation, a worker racing on stale state — surfaces here as a
//! verdict flip, an inoperable plan, or a cost divergence.

use etcs::network::fixtures;
use etcs::prelude::*;

/// The thread counts the acceptance gate names. `Portfolio(1)` must behave
/// exactly like `Single` (a one-worker race is no race).
const THREADS: [usize; 3] = [1, 2, 4];

/// Thread counts for the per-fixture sweeps. On a single core every racing
/// worker multiplies the wall clock by roughly its thread count, so the big
/// Table I case studies (complex_layout, nordlandsbanen) skip the 4-thread
/// run — every thread count still meets every layout on the small fixtures,
/// and every fixture still meets a real race at 2 threads.
fn sweep_threads(scenario: &Scenario) -> &'static [usize] {
    match scenario.name.as_str() {
        "Complex Layout" | "Nordlandsbanen" => &[1, 2],
        _ => &THREADS,
    }
}

fn racing(threads: usize) -> EncoderConfig {
    EncoderConfig {
        solve_mode: SolveMode::Portfolio(threads),
        ..EncoderConfig::default()
    }
}

/// The full optimal cost vector (`[borders]` for generation,
/// `[deadline_steps, borders]` for optimisation), or `None` when
/// infeasible.
fn optimum(outcome: &DesignOutcome) -> Option<Vec<u64>> {
    match outcome {
        DesignOutcome::Solved { costs, .. } => Some(costs.clone()),
        DesignOutcome::Infeasible => None,
    }
}

#[test]
fn portfolio_verification_verdicts_match_single_threaded() {
    let config = EncoderConfig::default();
    for scenario in fixtures::all() {
        let inst = Instance::new(&scenario).expect("fixtures are valid");
        for layout in [VssLayout::pure_ttd(), VssLayout::full(&inst.net)] {
            let (single, _) = verify(&scenario, &layout, &config).expect("well-formed");
            for &threads in sweep_threads(&scenario) {
                let (raced, _) = verify(&scenario, &layout, &racing(threads)).expect("well-formed");
                assert_eq!(
                    single.is_feasible(),
                    raced.is_feasible(),
                    "{}: verify verdict diverged at {threads} threads",
                    scenario.name
                );
                // Any model a race returns must be operable: the winning
                // worker may differ from the sequential search, so its plan
                // is re-checked by the independent validator rather than
                // compared bit-for-bit.
                if let Some(plan) = raced.plan() {
                    let report = etcs::sim::validate(&inst, plan, true);
                    assert!(
                        report.is_valid(),
                        "{}: portfolio plan at {threads} threads is inoperable: {report}",
                        scenario.name
                    );
                }
            }
        }
    }
}

#[test]
fn portfolio_generation_verdicts_and_costs_match_single_threaded() {
    let config = EncoderConfig::default();
    for scenario in fixtures::all() {
        let inst = Instance::new(&scenario).expect("fixtures are valid");
        let (single, _) = generate(&scenario, &config).expect("well-formed");
        for &threads in sweep_threads(&scenario) {
            let (raced, _) = generate(&scenario, &racing(threads)).expect("well-formed");
            assert_eq!(
                optimum(&single),
                optimum(&raced),
                "{}: generate optimum diverged at {threads} threads",
                scenario.name
            );
            if let Some(plan) = raced.plan() {
                let report = etcs::sim::validate(&inst, plan, true);
                assert!(
                    report.is_valid(),
                    "{}: generated portfolio plan at {threads} threads is inoperable: {report}",
                    scenario.name
                );
            }
        }
    }
}

#[test]
fn portfolio_optimisation_optima_are_bit_identical() {
    let config = EncoderConfig::default();
    for scenario in fixtures::all() {
        // Optimisation ignores arrival deadlines; validate against the
        // deadline-free instance with deadline enforcement off, exactly as
        // the benchmark harness does.
        let open_inst = Instance::new(&scenario.without_arrivals()).expect("fixtures are valid");
        let (single, _) = optimize(&scenario, &config).expect("well-formed");
        for &threads in sweep_threads(&scenario) {
            let (raced, _) = optimize(&scenario, &racing(threads)).expect("well-formed");
            assert_eq!(
                optimum(&single),
                optimum(&raced),
                "{}: optimize optimum diverged at {threads} threads",
                scenario.name
            );
            if let Some(plan) = raced.plan() {
                let report = etcs::sim::validate(&open_inst, plan, false);
                assert!(
                    report.is_valid(),
                    "{}: optimised portfolio plan at {threads} threads is inoperable: {report}",
                    scenario.name
                );
            }
        }
    }
}

#[test]
fn portfolio_incremental_optimisation_reuses_interrupted_workers() {
    // The incremental loop issues many `solve_with` calls on one long-lived
    // solver; in portfolio mode every one of those calls is a race whose
    // losers are cancelled mid-search. The loop only reaches the right
    // optimum if cancellation leaves the caller's state reusable, so this
    // is the end-to-end form of the "state intact after a race" guarantee.
    let config = EncoderConfig::default();
    let scenario = fixtures::running_example();
    let (single, _) = optimize_incremental(&scenario, &config).expect("well-formed");
    for threads in THREADS {
        let (raced, _) = optimize_incremental(&scenario, &racing(threads)).expect("well-formed");
        assert_eq!(
            optimum(&single),
            optimum(&raced),
            "incremental optimum diverged at {threads} threads"
        );
    }
}

#[test]
fn portfolio_lazy_loops_agree_with_their_single_threaded_selves() {
    // The CEGAR relaxation solves are the portfolio's hot path in the lazy
    // loops; the refiner must stay sound when its counterexamples come from
    // whichever worker happened to win.
    use etcs::lazy::{verify_lazy, LazyConfig};
    let config = EncoderConfig::default();
    let lazy = LazyConfig::default();
    let scenario = fixtures::running_example();
    let inst = Instance::new(&scenario).expect("fixtures are valid");
    for layout in [VssLayout::pure_ttd(), VssLayout::full(&inst.net)] {
        let (single, _) = verify_lazy(&scenario, &layout, &config, &lazy).expect("well-formed");
        for threads in THREADS {
            let (raced, _) =
                verify_lazy(&scenario, &layout, &racing(threads), &lazy).expect("well-formed");
            assert_eq!(
                single.is_feasible(),
                raced.is_feasible(),
                "lazy verify verdict diverged at {threads} threads"
            );
        }
    }
}
