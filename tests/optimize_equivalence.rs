//! Differential tests for the three optimisation loops: the from-scratch
//! walk-up ([`optimize`]), the persistent incremental solver
//! ([`optimize_incremental`]) and the two-racer portfolio
//! ([`optimize_portfolio`]) must agree **bit-identically** on the optimal
//! completion deadline and the minimal border count of every fixture.
//! Witness plans may differ; each one must pass the independent simulator.

use etcs::prelude::*;
use etcs::sim;

fn config() -> EncoderConfig {
    EncoderConfig::default()
}

/// The optimal `(deadline_steps, borders)` pair of an outcome, or `None`
/// when infeasible.
fn optimum(outcome: &DesignOutcome) -> Option<(u64, u64)> {
    match outcome {
        DesignOutcome::Solved { costs, .. } => Some((costs[0], costs[1])),
        DesignOutcome::Infeasible => None,
    }
}

/// Runs all three loops on `scenario` and checks they agree; returns the
/// shared optimum. Every produced plan is replayed by the simulator
/// against the deadline-free instance (optimisation drops arrivals).
fn assert_loops_agree(scenario: &Scenario) -> Option<(u64, u64)> {
    let open = scenario.without_arrivals();
    let inst = Instance::new(&open).expect("valid scenario");

    let (scratch, _) = optimize(scenario, &config()).expect("well-formed");
    let (incremental, report) = optimize_incremental(scenario, &config()).expect("well-formed");
    let (portfolio, _) = optimize_portfolio(scenario, &config()).expect("well-formed");

    assert_eq!(
        optimum(&scratch),
        optimum(&incremental),
        "{}: incremental diverged from scratch",
        scenario.name
    );
    assert_eq!(
        optimum(&scratch),
        optimum(&portfolio),
        "{}: portfolio diverged from scratch",
        scenario.name
    );

    for (label, outcome) in [
        ("scratch", &scratch),
        ("incremental", &incremental),
        ("portfolio", &portfolio),
    ] {
        if let Some(plan) = outcome.plan() {
            let report = sim::validate(&inst, plan, true);
            assert!(report.is_valid(), "{} ({label}): {report}", scenario.name);
        }
    }

    // The incremental loop really ran on one persistent solver.
    assert!(report.search.solve_calls as usize >= report.solver_calls);
    optimum(&scratch)
}

#[test]
fn loops_agree_on_running_example() {
    assert!(assert_loops_agree(&fixtures::running_example()).is_some());
}

#[test]
fn loops_agree_on_complex_layout() {
    assert!(assert_loops_agree(&fixtures::complex_layout()).is_some());
}

#[test]
fn loops_agree_on_nordlandsbanen() {
    assert!(assert_loops_agree(&fixtures::nordlandsbanen()).is_some());
}

#[test]
fn loops_agree_on_branch_line() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/branch_line.rail");
    let text = std::fs::read_to_string(path).expect("branch_line.rail ships with the repo");
    let scenario = etcs::parse_scenario(&text).expect("sample scenario parses");
    assert!(assert_loops_agree(&scenario).is_some());
}

#[test]
fn loops_agree_on_convoy_and_its_search_is_multi_probe() {
    let scenario = fixtures::convoy();
    let (deadline_steps, borders) = assert_loops_agree(&scenario).expect("convoy is feasible");

    // The convoy fixture exists to exercise the multi-probe regime: its
    // fast followers are stuck behind the slow leader, so the optimal
    // completion sits strictly above the unobstructed lower bound and the
    // deadline search must refute several candidate deadlines first.
    let inst = Instance::new(&scenario.without_arrivals()).expect("valid scenario");
    let optimal_deadline = deadline_steps as usize - 1;
    assert!(
        inst.completion_lower_bound() < optimal_deadline,
        "congestion must push the optimum ({optimal_deadline}) above the \
         lower bound ({})",
        inst.completion_lower_bound()
    );
    assert!(
        borders >= 1,
        "close following needs at least one VSS border"
    );
}
