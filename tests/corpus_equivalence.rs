//! Corpus-wide differential tests: on ≥30 generated instances of *every*
//! corpus family, the eager incremental loop, the lazy CEGAR loop under
//! every Engels–Wille selection strategy, and the clause-sharing
//! portfolio must return **bit-identical** verdicts and proven optima —
//! and every SAT model is re-validated by the independent `etcs-sim`
//! validator. The corpus generators are seeded and deterministic
//! (`etcs_corpus::InstanceSpec::build` is pure), so any failure here is
//! replayable from the instance name in the assertion message.

use etcs::corpus::{sample_specs, Family, InstanceSpec, SizeClass, SolveSetup};
use etcs::lazy::{optimize_lazy, verify_lazy, LazyConfig, SelectionStrategy};
use etcs::prelude::*;

/// Instances per family (the issue floor is 30).
const INSTANCES_PER_FAMILY: usize = 30;

/// The proven optimal cost vector, or `None` when infeasible.
fn optimum(outcome: &DesignOutcome) -> Option<Vec<u64>> {
    match outcome {
        DesignOutcome::Solved { costs, .. } => Some(costs.clone()),
        DesignOutcome::Infeasible => None,
    }
}

/// Re-validates a solved plan with the independent simulator. The
/// optimisation task drops arrival deadlines (its objective replaces
/// them), so deadline enforcement is off.
fn assert_sim_valid(scenario: &Scenario, outcome: &DesignOutcome, label: &str) {
    if let Some(plan) = outcome.plan() {
        let inst = Instance::new(scenario).expect("valid corpus instance");
        let report = etcs::sim::validate(&inst, plan, false);
        assert!(
            report.is_valid(),
            "{}: {label} plan rejected by etcs-sim:\n{report:?}",
            scenario.name
        );
    }
}

/// One corpus instance through all five solve configurations.
fn assert_instance_agrees(spec: &InstanceSpec) {
    let scenario = spec.build();
    let config = EncoderConfig::default();

    let (eager, _) = optimize_incremental(&scenario, &config).expect("well-formed");
    let baseline = optimum(&eager);
    assert_sim_valid(&scenario, &eager, "eager");

    for strategy in SelectionStrategy::ALL {
        let lazy = LazyConfig::with_strategy(strategy);
        let (outcome, _) = optimize_lazy(&scenario, &config, &lazy).expect("well-formed");
        assert_eq!(
            optimum(&outcome),
            baseline,
            "{}: optimize_lazy({}) diverged from eager",
            scenario.name,
            strategy.name()
        );
        assert_sim_valid(&scenario, &outcome, strategy.name());
    }

    let (portfolio, _) = optimize_incremental(&scenario, &SolveSetup::Portfolio.encoder_config())
        .expect("well-formed");
    assert_eq!(
        optimum(&portfolio),
        baseline,
        "{}: portfolio diverged from eager",
        scenario.name
    );
    assert_sim_valid(&scenario, &portfolio, "portfolio");
}

fn assert_family_agrees(family: Family) {
    for spec in sample_specs(family, SizeClass::Small, INSTANCES_PER_FAMILY, 0xD1FF) {
        assert_instance_agrees(&spec);
    }
}

#[test]
fn grid_ladder_all_modes_agree() {
    assert_family_agrees(Family::GridLadder);
}

#[test]
fn convoy_chain_all_modes_agree() {
    assert_family_agrees(Family::ConvoyChain);
}

#[test]
fn branched_mesh_all_modes_agree() {
    assert_family_agrees(Family::BranchedMesh);
}

#[test]
fn station_throat_all_modes_agree() {
    assert_family_agrees(Family::StationThroat);
}

#[test]
fn moving_block_all_modes_agree() {
    assert_family_agrees(Family::MovingBlock);
}

/// Verification differential on a corpus slice: the fully subdivided
/// layout verified eagerly and lazily under every strategy (the verify
/// analogue of the optimisation sweep above, on fewer instances — the
/// optimisation loop already exercises the encoder once per deadline).
#[test]
fn verify_full_layout_agrees_across_families() {
    for family in Family::ALL {
        for spec in sample_specs(family, SizeClass::Small, 5, 0xFACE) {
            let scenario = spec.build();
            let config = EncoderConfig::default();
            let inst = Instance::new(&scenario).expect("valid corpus instance");
            let layout = VssLayout::full(&inst.net);
            let (eager, _) = verify(&scenario, &layout, &config).expect("well-formed");
            if let Some(plan) = eager.plan() {
                let report = etcs::sim::validate(&inst, plan, true);
                assert!(
                    report.is_valid(),
                    "{}: verify witness rejected by etcs-sim:\n{report:?}",
                    scenario.name
                );
            }
            for strategy in SelectionStrategy::ALL {
                let lazy = LazyConfig::with_strategy(strategy);
                let (relaxed, _) =
                    verify_lazy(&scenario, &layout, &config, &lazy).expect("well-formed");
                assert_eq!(
                    eager.is_feasible(),
                    relaxed.is_feasible(),
                    "{}: verify_lazy({}) diverged",
                    scenario.name,
                    strategy.name()
                );
            }
        }
    }
}

/// A thin Medium slice: one instance per family at the next size up, so
/// the differential suite is not blind to scale-dependent divergence
/// (the full Medium sweep lives in `bench_corpus`, not the test suite).
#[test]
fn medium_slice_all_modes_agree() {
    for family in Family::ALL {
        for spec in sample_specs(family, SizeClass::Medium, 1, 0xBEEF) {
            assert_instance_agrees(&spec);
        }
    }
}
