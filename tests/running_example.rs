//! Integration tests reproducing the paper's running-example narrative
//! (Fig. 1, Fig. 2, Example 2) across all crates.

use etcs::prelude::*;
use etcs::sim;

fn config() -> EncoderConfig {
    EncoderConfig::default()
}

#[test]
fn fig1_schedule_deadlocks_on_pure_ttd() {
    let scenario = fixtures::running_example();
    let (outcome, report) =
        verify(&scenario, &VssLayout::pure_ttd(), &config()).expect("well-formed");
    assert!(!outcome.is_feasible(), "Example 2: pure TTD deadlocks");
    assert!(report.stats.clauses > 0);
    assert_eq!(report.solver_calls, 1);
}

#[test]
fn fig1_vss_layout_with_five_sections_works() {
    // The paper's Fig. 1a VSS layout yields 5+ sections and admits the
    // schedule; our generated minimal layout has exactly 5 sections.
    let scenario = fixtures::running_example();
    let inst = Instance::new(&scenario).expect("valid");
    let (outcome, _) = generate(&scenario, &config()).expect("well-formed");
    let DesignOutcome::Solved { plan, costs } = outcome else {
        panic!("generation must succeed");
    };
    assert_eq!(costs[0], 1, "one virtual border suffices");
    assert_eq!(plan.section_count(&inst), 5, "paper: 5 TTD/VSS sections");
}

#[test]
fn fig2_optimisation_is_faster_with_more_sections() {
    let scenario = fixtures::running_example();
    let open_inst = Instance::new(&scenario.without_arrivals()).expect("valid");
    let (gen_outcome, _) = generate(&scenario, &config()).expect("well-formed");
    let (opt_outcome, _) = optimize(&scenario, &config()).expect("well-formed");
    let (DesignOutcome::Solved { plan: gen_plan, .. }, DesignOutcome::Solved { plan, costs }) =
        (gen_outcome, opt_outcome)
    else {
        panic!("both tasks succeed on the running example");
    };
    let inst = Instance::new(&scenario).expect("valid");
    let gen_steps = gen_plan.completion_steps(&inst);
    assert!(
        (costs[0] as usize) < gen_steps,
        "optimisation ({}) must beat generation ({gen_steps})",
        costs[0]
    );
    assert!(
        plan.section_count(&open_inst) > gen_plan.section_count(&inst),
        "speed is bought with additional VSS sections"
    );
}

#[test]
fn every_arrival_deadline_is_respected_in_the_generated_plan() {
    let scenario = fixtures::running_example();
    let inst = Instance::new(&scenario).expect("valid");
    let (outcome, _) = generate(&scenario, &config()).expect("well-formed");
    let plan = outcome.plan().expect("feasible");
    for (spec, arrival) in inst.trains.iter().zip(plan.arrival_steps(&inst)) {
        let arrival = arrival.expect("every train arrives");
        let deadline = spec.deadline_step.expect("verification schedule");
        assert!(
            arrival <= deadline,
            "{} arrives at {arrival}, deadline {deadline}",
            spec.name
        );
    }
}

#[test]
fn solver_plans_pass_independent_validation() {
    let scenario = fixtures::running_example();
    let inst = Instance::new(&scenario).expect("valid");
    let (outcome, _) = generate(&scenario, &config()).expect("well-formed");
    let report = sim::validate(&inst, outcome.plan().expect("feasible"), true);
    assert!(report.is_valid(), "{report}");
}

#[test]
fn greedy_dispatcher_agrees_with_the_verification_verdict() {
    // Pure TTD: both the SAT verifier and the operational dispatcher fail.
    let scenario = fixtures::running_example();
    let inst = Instance::new(&scenario).expect("valid");
    let result = sim::dispatch(&inst, &VssLayout::pure_ttd());
    assert!(!result.all_arrived());
}

#[test]
fn generated_layout_is_minimal() {
    // Every strictly smaller layout (here: the empty one) fails; the
    // generated cost-1 layout is optimal by the solver's proof, and
    // removing its border indeed breaks the schedule.
    let scenario = fixtures::running_example();
    let (outcome, _) = generate(&scenario, &config()).expect("well-formed");
    let DesignOutcome::Solved { costs, .. } = outcome else {
        panic!("generation succeeds");
    };
    assert_eq!(costs[0], 1);
    let (pure, _) = verify(&scenario, &VssLayout::pure_ttd(), &config()).expect("well-formed");
    assert!(!pure.is_feasible());
}

#[test]
fn train3_parks_at_station_c() {
    // Station C is interior: train 3 must remain parked there to the end.
    let scenario = fixtures::running_example();
    let inst = Instance::new(&scenario).expect("valid");
    let (outcome, _) = generate(&scenario, &config()).expect("well-formed");
    let plan = outcome.plan().expect("feasible");
    let t3 = &plan.plans[2];
    let arrival = t3
        .arrival_step(&inst.trains[2].goal_edges)
        .expect("arrives");
    for t in arrival..inst.t_max {
        assert!(
            t3.positions[t]
                .iter()
                .any(|e| inst.trains[2].goal_edges.contains(e)),
            "train 3 must stay at station C from step {arrival} (broken at {t})"
        );
    }
}

#[test]
fn leave_trains_vacate_the_network() {
    let scenario = fixtures::running_example();
    let inst = Instance::new(&scenario).expect("valid");
    let (outcome, _) = generate(&scenario, &config()).expect("well-formed");
    let plan = outcome.plan().expect("feasible");
    // Train 2 ends at boundary station A; it must be gone by the last step
    // (it arrives well before the horizon).
    let t2 = &plan.plans[1];
    let last = t2.last_present_step().expect("was present");
    assert!(last < inst.t_max - 1, "train 2 leaves before the horizon");
}
