//! Determinism regression: the parallel batch driver and the portfolio
//! racer both involve thread scheduling, but neither may let it leak into
//! answers. Two runs over the same fixtures must report bit-identical
//! optima (deadline and border counts) — the work-stealing order and the
//! racer that happens to claim the win are allowed to differ, the numbers
//! are not.

use etcs::network::generator::{single_track_line, LineConfig};
use etcs::prelude::*;
use etcs::{optimize_all_with_threads, optimize_portfolio, DesignOutcome, OptimizeMode};

// The paper's running example plus a small generated line (fixed seed):
// both optimize in about a second even in debug builds, so the repeated
// runs below stay cheap. The heavier fixtures are covered once each by
// `tests/case_studies.rs`.
fn fixture_set() -> Vec<Scenario> {
    let line = single_track_line(&LineConfig {
        stations: 3,
        loop_every: 2,
        link_m: 1000,
        trains_per_direction: 1,
        headway: Seconds::from_minutes(2),
        r_s: Meters(500),
        r_t: Seconds(30),
        horizon: Seconds::from_minutes(10),
        seed: 7,
        ..LineConfig::default()
    });
    vec![fixtures::running_example(), line]
}

/// The proven objective costs `[deadline, borders, ...]`, or `None` for
/// an infeasible scenario.
fn costs(outcome: &DesignOutcome) -> Option<Vec<u64>> {
    match outcome {
        DesignOutcome::Solved { costs, .. } => Some(costs.clone()),
        DesignOutcome::Infeasible => None,
    }
}

fn batch_costs(mode: OptimizeMode, threads: usize) -> Vec<Option<Vec<u64>>> {
    let scenarios = fixture_set();
    let config = EncoderConfig::default();
    optimize_all_with_threads(&scenarios, &config, mode, threads)
        .into_iter()
        .map(|r| costs(&r.expect("fixtures are well-formed").0))
        .collect()
}

#[test]
fn optimize_all_is_deterministic_across_runs_and_thread_counts() {
    let first = batch_costs(OptimizeMode::Incremental, 2);
    let second = batch_costs(OptimizeMode::Incremental, 2);
    assert_eq!(first, second, "same thread count, different answers");

    // A single worker processes the batch in input order with no
    // interleaving at all; the multi-threaded run must match it exactly.
    let serial = batch_costs(OptimizeMode::Incremental, 1);
    assert_eq!(first, serial, "thread count changed the answers");
}

#[test]
fn portfolio_race_is_deterministic_despite_scheduling() {
    let config = EncoderConfig::default();
    for scenario in fixture_set() {
        let (a, _) = optimize_portfolio(&scenario, &config).expect("well-formed");
        let (b, _) = optimize_portfolio(&scenario, &config).expect("well-formed");
        assert_eq!(
            costs(&a),
            costs(&b),
            "{}: racer scheduling leaked into the optimum",
            scenario.name
        );
        // And the race must agree with the sequential loop, which is the
        // reference semantics it merely accelerates.
        let (seq, _) = optimize(&scenario, &config).expect("well-formed");
        assert_eq!(
            costs(&a),
            costs(&seq),
            "{}: race != sequential",
            scenario.name
        );
    }
}

#[test]
fn portfolio_batch_is_deterministic() {
    let first = batch_costs(OptimizeMode::Portfolio, 2);
    let second = batch_costs(OptimizeMode::Portfolio, 2);
    assert_eq!(
        first, second,
        "portfolio batch answers must be reproducible"
    );
}
