//! The observability contract, end to end: a traced run's event stream
//! must tell the same story as the `Stats`/`TaskReport` figures the
//! benchmarks record, the span vocabulary must stay stable (it is
//! documented in DESIGN.md §10 and asserted again by `ci/check.sh`), and
//! tracing must not change any answer.

use etcs::obs::{EventKind, Obs, Value};
use etcs::prelude::*;
use etcs::{
    optimize_incremental_obs, optimize_obs, optimize_portfolio_obs, verify_obs, DesignOutcome,
};

fn costs(outcome: &DesignOutcome) -> Option<&[u64]> {
    match outcome {
        DesignOutcome::Solved { costs, .. } => Some(costs),
        DesignOutcome::Infeasible => None,
    }
}

#[test]
fn traced_optimize_event_stream_agrees_with_stats() {
    let scenario = fixtures::running_example();
    let config = EncoderConfig::default();
    let (obs, sink) = Obs::memory();

    let (outcome, report) = optimize_obs(&scenario, &config, &obs).expect("well-formed");
    let (baseline, _) = optimize(&scenario, &config).expect("well-formed");
    assert_eq!(
        costs(&baseline),
        costs(&outcome),
        "tracing changed the answer"
    );

    let events = sink.events();
    let task_close = events
        .iter()
        .find(|e| e.kind == EventKind::SpanClose && e.name == "task.optimize")
        .expect("task span closes");
    let task_id = task_close.span;

    // Probe spans: one per Stage-1 deadline candidate, all children of the
    // task span, and their count matches both the close field and the
    // metrics counter.
    let probe_closes: Vec<_> = events
        .iter()
        .filter(|e| e.kind == EventKind::SpanClose && e.name == "probe" && e.parent == task_id)
        .collect();
    assert!(!probe_closes.is_empty());
    assert_eq!(
        task_close.field_u64("probes"),
        Some(probe_closes.len() as u64)
    );
    assert_eq!(
        obs.metrics().counter("probes"),
        probe_closes.len() as u64,
        "probes counter disagrees with the span stream"
    );

    // Conflict totals: the task close field, the metrics counter, and the
    // per-probe/stage2 breakdown must all equal Stats.conflicts.
    assert_eq!(
        task_close.field_u64("conflicts"),
        Some(report.search.conflicts)
    );
    assert_eq!(obs.metrics().counter("conflicts"), report.search.conflicts);
    let breakdown: u64 = events
        .iter()
        .filter(|e| e.kind == EventKind::SpanClose && (e.name == "probe" || e.name == "stage2"))
        .filter_map(|e| e.field_u64("conflicts"))
        .sum();
    assert_eq!(
        breakdown, report.search.conflicts,
        "per-span conflicts must sum to the total"
    );

    // The solved figures mirror the outcome.
    let c = costs(&outcome).expect("running example solves");
    assert_eq!(task_close.field_u64("deadline"), Some(c[0] - 1));
    assert_eq!(task_close.field_u64("borders"), Some(c[1]));
    assert_eq!(
        task_close.field_u64("solver_calls"),
        Some(report.solver_calls as u64)
    );

    // Exactly one sat.solve span per solver call.
    let solves = events
        .iter()
        .filter(|e| e.kind == EventKind::SpanClose && e.name == "sat.solve")
        .count();
    assert_eq!(solves, report.solver_calls);
}

#[test]
fn traced_incremental_probe_deltas_sum_to_stats() {
    let scenario = fixtures::running_example();
    let config = EncoderConfig::default();
    let (obs, sink) = Obs::memory();
    let (outcome, report) =
        optimize_incremental_obs(&scenario, &config, &obs).expect("well-formed");
    let (baseline, _) = optimize(&scenario, &config).expect("well-formed");
    assert_eq!(
        costs(&baseline),
        costs(&outcome),
        "tracing changed the answer"
    );

    // On the persistent solver the probe events carry per-call deltas;
    // together with the stage2 delta they must reconstruct the cumulative
    // Stats of the one long-lived solver.
    let events = sink.events();
    let deltas: u64 = events
        .iter()
        .filter(|e| e.kind == EventKind::SpanClose && (e.name == "probe" || e.name == "stage2"))
        .filter_map(|e| e.field_u64("conflicts"))
        .sum();
    assert_eq!(deltas, report.search.conflicts);
    assert_eq!(obs.metrics().counter("conflicts"), report.search.conflicts);
}

#[test]
fn portfolio_trace_names_the_winner() {
    let scenario = fixtures::running_example();
    let config = EncoderConfig::default();
    let (obs, sink) = Obs::memory();
    let (outcome, _) = optimize_portfolio_obs(&scenario, &config, &obs).expect("well-formed");
    let c = costs(&outcome).expect("running example solves").to_vec();

    let events = sink.events();
    let outcomes: Vec<_> = events
        .iter()
        .filter(|e| e.name == "portfolio.outcome")
        .collect();
    assert_eq!(outcomes.len(), 1, "exactly one racer claims the race");
    let winner = outcomes[0];
    let strategy = winner.field_str("strategy").expect("winner named");
    assert!(strategy == "walk_up" || strategy == "binary");
    assert_eq!(winner.field_u64("deadline"), Some(c[0] - 1));
    assert_eq!(winner.field("feasible"), Some(&Value::Bool(true)));

    // Both racers ran under the task span, and exactly one reports a win.
    let races: Vec<_> = events
        .iter()
        .filter(|e| e.kind == EventKind::SpanClose && e.name == "race")
        .collect();
    assert_eq!(races.len(), 2);
    let wins = races
        .iter()
        .filter(|e| e.field("won") == Some(&Value::Bool(true)))
        .count();
    assert_eq!(wins, 1);

    let task_close = events
        .iter()
        .find(|e| e.kind == EventKind::SpanClose && e.name == "task.optimize_portfolio")
        .expect("task span closes");
    assert_eq!(task_close.field_u64("deadline"), Some(c[0] - 1));
    assert_eq!(task_close.field_u64("borders"), Some(c[1]));
}

#[test]
fn batch_workers_trace_their_jobs() {
    let scenarios = vec![fixtures::running_example(), fixtures::simple_layout()];
    let config = EncoderConfig::default();
    let (obs, sink) = Obs::memory();
    let results = etcs::optimize_all_obs(&scenarios, &config, OptimizeMode::Incremental, 2, &obs);
    assert!(results.iter().all(Result::is_ok));

    let events = sink.events();
    let worker_closes: Vec<_> = events
        .iter()
        .filter(|e| e.kind == EventKind::SpanClose && e.name == "parallel.worker")
        .collect();
    assert_eq!(worker_closes.len(), 2, "one span per worker thread");
    let jobs: u64 = worker_closes
        .iter()
        .filter_map(|e| e.field_u64("jobs"))
        .sum();
    assert_eq!(
        jobs as usize,
        scenarios.len(),
        "every job is claimed exactly once"
    );
    let tasks = events
        .iter()
        .filter(|e| e.kind == EventKind::SpanClose && e.name == "task.optimize_incremental")
        .count();
    assert_eq!(tasks, scenarios.len());
}

#[test]
fn traced_verify_mirrors_its_outcome() {
    let scenario = fixtures::running_example();
    let config = EncoderConfig::default();
    let (obs, sink) = Obs::memory();
    let (outcome, report) =
        verify_obs(&scenario, &VssLayout::pure_ttd(), &config, &obs).expect("well-formed");
    assert!(!outcome.is_feasible(), "paper: pure TTD deadlocks");
    let close = sink
        .events()
        .into_iter()
        .rfind(|e| e.kind == EventKind::SpanClose && e.name == "task.verify")
        .expect("task span closes");
    assert_eq!(close.field("feasible"), Some(&Value::Bool(false)));
    assert_eq!(close.field_u64("conflicts"), Some(report.search.conflicts));
}

#[test]
fn jsonl_trace_artifact_replays_the_documented_schema() {
    let path = std::env::temp_dir().join("etcs_obs_trace_it.jsonl");
    let scenario = fixtures::running_example();
    let config = EncoderConfig::default();
    {
        let obs = Obs::jsonl(&path).expect("create trace");
        let (outcome, _) = optimize_obs(&scenario, &config, &obs).expect("well-formed");
        assert!(costs(&outcome).is_some());
        obs.flush_metrics();
        obs.flush();
    }
    let text = std::fs::read_to_string(&path).expect("artifact written");
    let mut seen_names = std::collections::BTreeSet::new();
    for (i, line) in text.lines().enumerate() {
        let v = etcs::obs::json::parse(line)
            .unwrap_or_else(|e| panic!("line {} is not valid JSON: {e}", i + 1));
        let seq = v.get("seq").and_then(etcs::obs::json::Json::as_f64);
        assert_eq!(
            seq,
            Some(i as f64),
            "seq numbers are gap-free in file order"
        );
        if let Some(name) = v.get("name").and_then(etcs::obs::json::Json::as_str) {
            seen_names.insert(name.to_owned());
        }
    }
    for expected in ["task.optimize", "encode", "probe", "stage2", "sat.solve"] {
        assert!(
            seen_names.contains(expected),
            "trace lacks documented span name {expected:?}; saw {seen_names:?}"
        );
    }
    let _ = std::fs::remove_file(&path);
}

/// The replanning stats-vs-trace invariant: a [`ReplanSession`]'s
/// lifetime counters, its `replan.*` metrics and its span stream must
/// all tell the same story — for the shipped exemplar trace, not a toy.
/// This is the session-level half of the contract whose service-level
/// half (the `served` stats record) is pinned in `crates/fleet/tests`.
#[test]
fn replan_session_trace_agrees_with_its_stats() {
    use etcs::replan::{parse_trace, ReplanConfig, ReplanSession, ScenarioDelta, TraceOp};

    let (obs, sink) = Obs::memory();
    let mut session =
        ReplanSession::new_obs(fixtures::running_example(), ReplanConfig::default(), &obs)
            .expect("base scenario is valid");
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/scenarios/replay/running_example.delta"
    ))
    .expect("exemplar ships with the repo");
    let mut reported_conflicts = 0;
    for op in &parse_trace(&text).expect("exemplar parses") {
        match op {
            TraceOp::Delta(d) => session.apply(d).expect("exemplar deltas apply"),
            TraceOp::Tick => reported_conflicts += session.tick().conflicts,
        }
    }
    // One rejected delta, so that counter is exercised too.
    session
        .apply(&ScenarioDelta::Remove {
            train: "ghost".into(),
        })
        .expect_err("unknown train is rejected");

    // The ledger invariant: every tick is warm or cold, none missed
    // (the session runs without a tick budget).
    let stats = session.stats();
    assert_eq!(stats.ticks, stats.warm_hits + stats.cold_fallbacks);
    assert_eq!(stats.deadline_misses, 0);
    assert!(stats.warm_hits > 0 && stats.cold_fallbacks > 0);

    // Span stream vs stats: one open, one tick close per tick, warm and
    // stale fields consistent with the counters.
    let events = sink.events();
    assert_eq!(
        events
            .iter()
            .filter(|e| e.kind == EventKind::SpanClose && e.name == "replan.open")
            .count(),
        1
    );
    let tick_closes: Vec<_> = events
        .iter()
        .filter(|e| e.kind == EventKind::SpanClose && e.name == "replan.tick")
        .collect();
    assert_eq!(tick_closes.len() as u64, stats.ticks);
    let warm = tick_closes
        .iter()
        .filter(|e| e.field("warm") == Some(&Value::Bool(true)))
        .count();
    assert_eq!(warm as u64, stats.warm_hits, "warm fields vs warm_hits");
    assert!(
        tick_closes
            .iter()
            .all(|e| e.field("stale") == Some(&Value::Bool(false))),
        "no budget, no staleness"
    );

    // Per-tick conflicts fields sum to the TickReports' sum and to the
    // shared `conflicts` counter the solver spans feed.
    let span_conflicts: u64 = tick_closes
        .iter()
        .filter_map(|e| e.field_u64("conflicts"))
        .sum();
    assert_eq!(span_conflicts, reported_conflicts);
    assert_eq!(obs.metrics().counter("conflicts"), reported_conflicts);

    // Every probe span is a child of some replan.tick span: the warm
    // solver's search is attributed to the tick that ran it.
    let tick_ids: std::collections::BTreeSet<_> = tick_closes.iter().map(|e| e.span).collect();
    let probes: Vec<_> = events
        .iter()
        .filter(|e| e.kind == EventKind::SpanClose && e.name == "probe")
        .collect();
    assert!(!probes.is_empty());
    assert!(probes.iter().all(|e| tick_ids.contains(&e.parent)));

    // Delta spans: one per apply() call, accepted mirroring the split.
    let delta_closes: Vec<_> = events
        .iter()
        .filter(|e| e.kind == EventKind::SpanClose && e.name == "replan.delta")
        .collect();
    assert_eq!(
        delta_closes.len() as u64,
        stats.deltas + stats.rejected_deltas
    );
    let accepted = delta_closes
        .iter()
        .filter(|e| e.field("accepted") == Some(&Value::Bool(true)))
        .count();
    assert_eq!(accepted as u64, stats.deltas);
    assert_eq!(stats.rejected_deltas, 1);

    // Metrics counters mirror ReplanStats field for field.
    let metrics = obs.metrics();
    for (name, want) in [
        ("replan.ticks", stats.ticks),
        ("replan.warm_hits", stats.warm_hits),
        ("replan.cold_fallbacks", stats.cold_fallbacks),
        ("replan.deadline_misses", stats.deadline_misses),
        ("replan.deltas", stats.deltas),
        ("replan.rejected_deltas", stats.rejected_deltas),
    ] {
        assert_eq!(metrics.counter(name), want, "counter {name}");
    }
}

#[test]
fn disabled_handle_changes_nothing_and_records_nothing() {
    let scenario = fixtures::running_example();
    let config = EncoderConfig::default();
    let obs = Obs::disabled();
    let (traced, _) = optimize_obs(&scenario, &config, &obs).expect("well-formed");
    let (plain, _) = optimize(&scenario, &config).expect("well-formed");
    assert_eq!(costs(&plain), costs(&traced));
    assert!(obs.metrics().is_empty());
}
